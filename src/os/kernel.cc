/**
 * @file
 * Kernel model implementation.
 */

#include "src/os/kernel.hh"

#include "src/base/intmath.hh"
#include "src/ckpt/serializer.hh"
#include "src/os/layout.hh"

namespace isim {

KernelModel::KernelModel(VirtualMemory &vm, unsigned num_cpus,
                         const KernelParams &params, std::uint64_t seed)
    : vm_(vm), params_(params)
{
    CodeModelParams cp;
    cp.vbase = layout::kernelText;
    cp.textBytes = params_.textBytes;
    cp.numFunctions = params_.numFunctions;
    cp.seed = seed;
    code_ = std::make_unique<CodeModel>(cp);

    rngs_.reserve(num_cpus);
    for (unsigned c = 0; c < num_cpus; ++c)
        rngs_.emplace_back(mix64(seed + 0x1000 + c));
}

namespace {

/** Interleaves kernel data references with kernel code lines. */
class KernelLineMixer : public LineDataEmitter
{
  public:
    KernelLineMixer(VirtualMemory &vm, const KernelParams &params,
                    NodeId cpu)
        : vm_(vm), params_(params), cpu_(cpu)
    {
    }

    void
    emitLineData(Rng &rng, std::deque<MemRef> &out) override
    {
        double want = params_.dataRefsPerLine;
        while (want >= 1.0 || rng.chance(want)) {
            want -= 1.0;
            const bool shared = rng.chance(params_.lineSharedFraction);
            const bool store = rng.chance(params_.lineStoreFraction);
            Addr vaddr;
            if (shared) {
                const std::uint64_t lines = params_.sharedDataBytes / 64;
                vaddr = layout::kernelShared +
                        rng.zipf(lines, params_.sharedSkew) * 64;
            } else {
                const std::uint64_t lines = params_.perCpuDataBytes / 64;
                vaddr = layout::kernelPerCpu +
                        cpu_ * layout::kernelPerCpuStride +
                        rng.zipf(lines, params_.sharedSkew) * 64;
            }
            const Addr paddr = vm_.translate(vaddr, cpu_);
            out.push_back(store ? storeRef(paddr, 0, true)
                                : loadRef(paddr, 0, true));
        }
    }

  private:
    VirtualMemory &vm_;
    const KernelParams &params_;
    NodeId cpu_;
};

} // namespace

void
KernelModel::invokeFunctions(NodeId cpu, unsigned count, Rng &rng,
                             std::deque<MemRef> &out)
{
    KernelLineMixer mixer(vm_, params_, cpu);
    for (unsigned i = 0; i < count; ++i) {
        // Skewed choice: dispatch/scheduling routines dominate.
        const unsigned f = static_cast<unsigned>(
            rng.zipf(code_->numFunctions(), params_.sharedSkew));
        instrs_ += code_->invoke(f, rng, vm_, cpu, /*kernel=*/true, out,
                                 &mixer);
    }
}

void
KernelModel::touchShared(NodeId cpu, unsigned refs, unsigned stores,
                         Rng &rng, std::deque<MemRef> &out)
{
    const std::uint64_t lines = params_.sharedDataBytes / 64;
    for (unsigned i = 0; i < refs; ++i) {
        const std::uint64_t line = rng.zipf(lines, params_.sharedSkew);
        const Addr paddr =
            vm_.translate(layout::kernelShared + line * 64, cpu);
        const bool store = i < stores;
        out.push_back(store ? storeRef(paddr, 0, true)
                            : loadRef(paddr, 0, true));
    }
}

void
KernelModel::touchPerCpu(NodeId cpu, unsigned refs, Rng &rng,
                         std::deque<MemRef> &out)
{
    const std::uint64_t lines = params_.perCpuDataBytes / 64;
    const Addr base =
        layout::kernelPerCpu + cpu * layout::kernelPerCpuStride;
    for (unsigned i = 0; i < refs; ++i) {
        const std::uint64_t line = rng.zipf(lines, params_.sharedSkew);
        const Addr paddr = vm_.translate(base + line * 64, cpu);
        // Context save/restore alternates loads and stores.
        out.push_back((i & 1) ? storeRef(paddr, 0, true)
                              : loadRef(paddr, 0, true));
    }
}

void
KernelModel::contextSwitch(NodeId cpu, std::deque<MemRef> &out)
{
    Rng &rng = rngs_[cpu];
    invokeFunctions(cpu, params_.switchFunctions, rng, out);
    touchShared(cpu, params_.switchSharedRefs, params_.switchSharedStores,
                rng, out);
    touchPerCpu(cpu, params_.switchPrivateRefs, rng, out);
}

void
KernelModel::syscall(NodeId cpu, std::deque<MemRef> &out,
                     std::uint64_t copy_bytes)
{
    Rng &rng = rngs_[cpu];
    invokeFunctions(cpu, params_.syscallFunctions, rng, out);
    touchShared(cpu, params_.syscallSharedRefs,
                params_.syscallSharedStores, rng, out);
    touchPerCpu(cpu, params_.syscallPrivateRefs, rng, out);

    if (copy_bytes > 0) {
        // Copy loop between a per-CPU kernel buffer and itself (the
        // user side is the caller's private memory; the caller emits
        // those references). One load + one store per line.
        const Addr base = layout::kernelPerCpu +
                          cpu * layout::kernelPerCpuStride +
                          params_.perCpuDataBytes;
        const std::uint64_t lines = divCeil(copy_bytes, 64);
        for (std::uint64_t i = 0; i < lines; ++i) {
            const Addr paddr = vm_.translate(base + (i % 64) * 64, cpu);
            out.push_back(loadRef(paddr, 0, true));
            out.push_back(storeRef(paddr, 0, true));
        }
    }
}

void
KernelModel::saveState(ckpt::Serializer &s) const
{
    s.u64(rngs_.size());
    for (const Rng &rng : rngs_)
        rng.saveState(s);
    s.u64(instrs_);
}

void
KernelModel::restoreState(ckpt::Deserializer &d)
{
    if (d.u64() != rngs_.size())
        isim_fatal("checkpoint kernel CPU count mismatch");
    for (Rng &rng : rngs_)
        rng.restoreState(d);
    instrs_ = d.u64();
}

} // namespace isim
