/**
 * @file
 * The simulated software process: the unit the scheduler multiplexes
 * onto CPUs. A process is a generator — each step() either yields the
 * next memory reference or an OS action (block on I/O or an event,
 * yield, exit). Workload implementations (OLTP servers, daemons)
 * subclass this.
 */

#ifndef ISIM_OS_PROCESS_HH
#define ISIM_OS_PROCESS_HH

#include <deque>
#include <string>

#include "src/base/types.hh"
#include "src/ckpt/fwd.hh"
#include "src/trace/record.hh"

namespace isim {

/** What a process asks for on each step. */
enum class StepKind : std::uint8_t {
    Ref,        //!< execute the reference in ProcessStep::ref
    BlockTimed, //!< sleep for ProcessStep::delay cycles (I/O)
    BlockEvent, //!< sleep until another process wakes us
    Yield,      //!< voluntarily relinquish the CPU
    Done,       //!< process exits
};

/** One scheduling decision from a process. */
struct ProcessStep
{
    StepKind kind = StepKind::Done;
    MemRef ref{};
    Tick delay = 0; //!< BlockTimed only
};

/**
 * Base class of all simulated processes. Processes are statically
 * bound to a CPU (Oracle dedicated servers run with affinity; this
 * also pins the first-touch placement of their private pages).
 */
class Process
{
  public:
    Process(std::string name, Pid pid, NodeId cpu)
        : name_(std::move(name)), pid_(pid), cpu_(cpu)
    {
    }
    virtual ~Process() = default;

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    const std::string &name() const { return name_; }
    Pid pid() const { return pid_; }
    NodeId cpu() const { return cpu_; }

    /** Produce the next action. `now` is the CPU's local time. */
    virtual ProcessStep step(Tick now) = 0;

    /**
     * Direct access to the pending reference queue, used by the
     * atomic execution path to drain generated references without a
     * virtual step() round-trip per reference. The contract every
     * subclass follows (and popPending() encodes): while pending_ is
     * non-empty, step() returns exactly pending_.front() and has no
     * other effect — so draining here is observably identical to
     * stepping, it just skips the dispatch.
     */
    bool hasPending() const { return !pending_.empty(); }
    MemRef popPendingRef()
    {
        const MemRef ref = pending_.front();
        pending_.pop_front();
        return ref;
    }

    /** Scheduler bookkeeping (owned by the scheduler). */
    enum class SchedState : std::uint8_t { Ready, Running, Blocked, Done };
    // ckpt: transient(schedState): saved by Scheduler::saveState, which owns it
    SchedState schedState = SchedState::Ready;
    // ckpt: transient(wakeTime): saved by Scheduler::saveState, which owns it
    Tick wakeTime = 0;

    /**
     * Checkpoint the process's execution state. The base class
     * serializes the pending reference queue; subclasses with state of
     * their own override, calling the base version first.
     */
    virtual void saveState(ckpt::Serializer &s) const;
    virtual void restoreState(ckpt::Deserializer &d);

  protected:
    /**
     * Helper for subclasses that generate references in batches: pop
     * from the pending queue first, refilling via the subclass logic.
     */
    std::deque<MemRef> pending_;

    /** Pop one pending ref into a Ref step (queue must be non-empty). */
    ProcessStep popPending()
    {
        ProcessStep s;
        s.kind = StepKind::Ref;
        s.ref = pending_.front();
        pending_.pop_front();
        return s;
    }

  private:
    // Identity is re-established by createProcesses before restore;
    // Scheduler::restoreState matches checkpoint records by pid.
    // ckpt: transient(name_): reconstructed identity, identical by contract
    std::string name_;
    // ckpt: transient(pid_): reconstructed identity, matched by Scheduler restore
    Pid pid_;
    // ckpt: transient(cpu_): reconstructed placement, identical by contract
    NodeId cpu_;
};

} // namespace isim

#endif // ISIM_OS_PROCESS_HH
