/**
 * @file
 * Process helpers.
 */

#include "src/os/process.hh"

namespace isim {

const char *
stepKindName(StepKind kind)
{
    switch (kind) {
      case StepKind::Ref:
        return "Ref";
      case StepKind::BlockTimed:
        return "BlockTimed";
      case StepKind::BlockEvent:
        return "BlockEvent";
      case StepKind::Yield:
        return "Yield";
      case StepKind::Done:
        return "Done";
    }
    return "?";
}

} // namespace isim
