/**
 * @file
 * Process helpers.
 */

#include "src/os/process.hh"

#include "src/ckpt/serializer.hh"

namespace isim {

const char *
stepKindName(StepKind kind)
{
    switch (kind) {
      case StepKind::Ref:
        return "Ref";
      case StepKind::BlockTimed:
        return "BlockTimed";
      case StepKind::BlockEvent:
        return "BlockEvent";
      case StepKind::Yield:
        return "Yield";
      case StepKind::Done:
        return "Done";
    }
    return "?";
}

void
Process::saveState(ckpt::Serializer &s) const
{
    s.u64(pending_.size());
    for (const MemRef &r : pending_)
        s.memRef(r);
}

void
Process::restoreState(ckpt::Deserializer &d)
{
    pending_.clear();
    const std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i)
        pending_.push_back(d.memRef());
}

} // namespace isim
