/**
 * @file
 * Virtual memory implementation.
 */

#include "src/os/vm.hh"

#include <algorithm>
#include <vector>

#include "src/base/intmath.hh"
#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

namespace {
/** Sentinel for a replicated copy that has not been allocated yet. */
constexpr Addr unmappedFrame = ~Addr{0};
} // namespace

VirtualMemory::VirtualMemory(const VmConfig &config)
    : config_(config), pageShift_(floorLog2(config.pageBytes)),
      rng_(config.seed), usedFrames_(config.homeMap.numNodes),
      allocCount_(config.homeMap.numNodes, 0), tlb_(tlbSize)
{
    isim_assert(isPowerOf2(config_.pageBytes));
    pages_.reserve(1 << 16);
}

void
VirtualMemory::setPolicy(Addr vbase, std::uint64_t size, PlacePolicy policy,
                         std::string name)
{
    isim_assert(size > 0);
    const Addr vend = vbase + size;
    for (const Region &r : regions_) {
        isim_assert(vend <= r.vbase || vbase >= r.vend,
                    "overlapping VM regions");
    }
    Region region;
    region.vbase = vbase;
    region.vend = vend;
    region.policy = policy;
    region.name = std::move(name);
    regions_.push_back(std::move(region));
    std::sort(regions_.begin(), regions_.end(),
              [](const Region &a, const Region &b) {
                  return a.vbase < b.vbase;
              });
}

VirtualMemory::Region *
VirtualMemory::regionOf(Addr vaddr)
{
    // Binary search over sorted, non-overlapping regions.
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), vaddr,
        [](Addr a, const Region &r) { return a < r.vbase; });
    if (it != regions_.begin()) {
        --it;
        if (vaddr >= it->vbase && vaddr < it->vend)
            return &*it;
    }
    return nullptr;
}

std::vector<VirtualMemory::RegionProfile>
VirtualMemory::regionProfiles() const
{
    std::vector<RegionProfile> out;
    out.reserve(regions_.size());
    for (const Region &r : regions_) {
        RegionProfile p;
        p.name = r.name.empty() ? "(unnamed)" : r.name;
        p.vbase = r.vbase;
        p.size = r.vend - r.vbase;
        p.policy = r.policy;
        p.accesses = r.accesses;
        p.uniqueLines = r.lines.size();
        out.push_back(std::move(p));
    }
    return out;
}

Addr
VirtualMemory::allocFrame(NodeId node, std::uint64_t color_hint)
{
    const std::uint64_t frames_per_node =
        config_.homeMap.nodeWindow() >> pageShift_;
    auto &used = usedFrames_[node];
    isim_assert(used.size() < frames_per_node, "node memory exhausted");
    std::uint64_t frame;
    if (config_.pageColors > 1) {
        // Colour-constrained placement: random frame within the
        // page's colour class.
        const std::uint64_t colors = config_.pageColors;
        isim_assert(frames_per_node % colors == 0,
                    "pageColors must divide the frame count");
        const std::uint64_t color = color_hint % colors;
        const std::uint64_t per_color = frames_per_node / colors;
        do {
            frame = rng_.below(per_color) * colors + color;
        } while (!used.insert(frame).second);
    } else {
        // Pseudo-random placement (no colouring); retries are rare at
        // realistic occupancies.
        do {
            frame = rng_.below(frames_per_node);
        } while (!used.insert(frame).second);
    }
    ++allocCount_[node];
    return config_.homeMap.nodeBase(node) +
           (frame << pageShift_);
}

Addr
VirtualMemory::translate(Addr vaddr, NodeId core)
{
    const NodeId node = nodeOfCore(core);
    const std::uint64_t vpn = vaddr >> pageShift_;
    const Addr offset = vaddr & (config_.pageBytes - 1);

    // Colour hint: the page's position within its segment, phase-
    // shifted per segment so aligned segment bases do not stack.
    std::uint64_t color_hint = vpn;
    if (config_.pageColors > 1) {
        // Offset per segment *and* per colour-window-sized chunk of
        // the segment: per-process areas inside one segment sit at
        // power-of-two strides (stacks, per-CPU data), and without
        // the chunk offset they would all stack onto the same colours
        // — the classic aligned-stack pathology.
        std::uint64_t local = vpn;
        std::uint64_t seg_salt = mix64(vaddr >> 40);
        if (const Region *r = regionOf(vaddr)) {
            local = vpn - (r->vbase >> pageShift_);
            seg_salt = mix64(r->vbase);
        }
        const std::uint64_t chunk = local / config_.pageColors;
        color_hint = local + seg_salt + mix64(chunk + seg_salt);
    }

    Region *prof_region = nullptr;
    if (profiling_) {
        if ((prof_region = regionOf(vaddr)) != nullptr) {
            ++prof_region->accesses;
            prof_region->lines.insert(vaddr >> 6);
        }
    }

    TlbEntry &te = tlb_[(vpn ^ (node * 0x9e37ULL)) % tlbSize];
    if (te.vpn == vpn && te.node == node)
        return te.frame + offset;

    Addr frame;
    PlacePolicy policy = PlacePolicy::Interleave;
    if (const Region *r = regionOf(vaddr))
        policy = r->policy;
    if (policy == PlacePolicy::Replicate) {
        auto &copies = replicated_[vpn];
        if (copies.empty())
            copies.assign(config_.homeMap.numNodes, unmappedFrame);
        if (copies[node] == unmappedFrame)
            copies[node] = allocFrame(node, color_hint);
        frame = copies[node];
    } else {
        auto it = pages_.find(vpn);
        if (it != pages_.end()) {
            frame = it->second;
        } else {
            NodeId target = node;
            if (policy == PlacePolicy::Interleave) {
                // Fixed striping by virtual page number: deterministic
                // and independent of first-touch order.
                target = static_cast<NodeId>(
                    vpn % config_.homeMap.numNodes);
            }
            frame = allocFrame(target, color_hint);
            pages_.emplace(vpn, frame);
        }
    }

    if (profiling_ && prof_region != nullptr) {
        frameRegion_.emplace(
            frame >> pageShift_,
            static_cast<std::uint16_t>(prof_region - regions_.data()));
    }

    te.vpn = vpn;
    te.node = node;
    te.frame = frame;
    return frame + offset;
}

int
VirtualMemory::regionIndexOfPaddr(Addr paddr) const
{
    auto it = frameRegion_.find(paddr >> pageShift_);
    return it == frameRegion_.end() ? -1 : static_cast<int>(it->second);
}

std::uint64_t
VirtualMemory::framesAllocated(NodeId node) const
{
    return allocCount_[node];
}

namespace {

/** Sorted keys of an unordered map (canonical serialization order). */
template <typename Map>
std::vector<std::uint64_t>
sortedKeys(const Map &map)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(map.size());
    for (const auto &kv : map)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
VirtualMemory::saveState(ckpt::Serializer &s) const
{
    rng_.saveState(s);
    s.u64(allocCount_.size());
    for (std::uint64_t n : allocCount_)
        s.u64(n);
    s.u64(pages_.size());
    for (std::uint64_t vpn : sortedKeys(pages_)) {
        s.u64(vpn);
        s.u64(pages_.at(vpn));
    }
    s.u64(replicated_.size());
    for (std::uint64_t vpn : sortedKeys(replicated_)) {
        s.u64(vpn);
        const std::vector<Addr> &copies = replicated_.at(vpn);
        s.u64(copies.size());
        for (Addr frame : copies)
            s.u64(frame);
    }
    s.u64(usedFrames_.size());
    for (const auto &frames : usedFrames_) {
        std::vector<std::uint64_t> sorted(frames.begin(), frames.end());
        std::sort(sorted.begin(), sorted.end());
        s.u64(sorted.size());
        for (std::uint64_t pfn : sorted)
            s.u64(pfn);
    }
}

void
VirtualMemory::restoreState(ckpt::Deserializer &d)
{
    rng_.restoreState(d);
    if (d.u64() != allocCount_.size())
        isim_fatal("checkpoint VM node count mismatch");
    for (std::uint64_t &n : allocCount_)
        n = d.u64();
    pages_.clear();
    const std::uint64_t npages = d.u64();
    for (std::uint64_t i = 0; i < npages; ++i) {
        const std::uint64_t vpn = d.u64();
        pages_[vpn] = d.u64();
    }
    replicated_.clear();
    const std::uint64_t nrepl = d.u64();
    for (std::uint64_t i = 0; i < nrepl; ++i) {
        const std::uint64_t vpn = d.u64();
        std::vector<Addr> copies(d.u64());
        for (Addr &frame : copies)
            frame = d.u64();
        replicated_[vpn] = std::move(copies);
    }
    if (d.u64() != usedFrames_.size())
        isim_fatal("checkpoint VM frame-table count mismatch");
    for (auto &frames : usedFrames_) {
        frames.clear();
        const std::uint64_t nframes = d.u64();
        for (std::uint64_t i = 0; i < nframes; ++i)
            frames.insert(d.u64());
    }
    for (TlbEntry &e : tlb_)
        e = TlbEntry{};
}

} // namespace isim
