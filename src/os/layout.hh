/**
 * @file
 * The simulated virtual address map. Regions are widely separated so
 * that workload components can grow without colliding; actual physical
 * frames are only allocated for touched pages.
 */

#ifndef ISIM_OS_LAYOUT_HH
#define ISIM_OS_LAYOUT_HH

#include "src/base/types.hh"

namespace isim::layout {

/** Kernel text (replicable per node when code replication is on). */
inline constexpr Addr kernelText = Addr{1} << 32;

/** Kernel data shared across CPUs (run queues, proc table, locks). */
inline constexpr Addr kernelShared = (Addr{1} << 32) + (Addr{1} << 30);

/** Per-CPU kernel data (PCBs, kernel stacks); 16 MB stride per CPU. */
inline constexpr Addr kernelPerCpu = (Addr{1} << 32) + (Addr{2} << 30);
inline constexpr Addr kernelPerCpuStride = Addr{16} << 20;

/** Database server text (the "Oracle binary"). */
inline constexpr Addr dbText = Addr{1} << 36;

/** System Global Area base; sub-layout defined by the OLTP engine. */
inline constexpr Addr sgaBase = Addr{1} << 40;

/** Per-process private memory (stack, PGA); 256 MB stride per pid. */
inline constexpr Addr processPrivate = Addr{1} << 44;
inline constexpr Addr processPrivateStride = Addr{256} << 20;

} // namespace isim::layout

#endif // ISIM_OS_LAYOUT_HH
