/**
 * @file
 * Single-issue in-order pipelined core (the paper's medium-speed
 * SimOS processor module, with which most of its results were taken).
 *
 * Timing rules: one cycle of busy time per instruction; L1 hits are
 * fully pipelined (no stall); every L1 miss stalls the core for the
 * full latency of wherever the line came from (L2, local memory,
 * remote home, remote dirty cache), charged from the active latency
 * table. Stores stall like loads — the memory system is sequentially
 * consistent and the simple pipe has no store buffer.
 */

#ifndef ISIM_CPU_INORDER_HH
#define ISIM_CPU_INORDER_HH

#include "src/cpu/core.hh"

namespace isim {

/** The in-order core. `final` lets the hot loop devirtualize. */
class InOrderCpu final : public CpuCore
{
  public:
    InOrderCpu(NodeId node, MemorySystem &mem);

    Tick consume(const MemRef &ref, Tick now) override;
    Tick drain(Tick now) override;
};

} // namespace isim

#endif // ISIM_CPU_INORDER_HH
