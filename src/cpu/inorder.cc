/**
 * @file
 * In-order core implementation.
 */

#include "src/cpu/inorder.hh"

#include "src/coherence/protocol.hh"

namespace isim {

InOrderCpu::InOrderCpu(NodeId node, MemorySystem &mem) : CpuCore(node, mem)
{
}

Tick
InOrderCpu::consume(const MemRef &ref, Tick now)
{
    Tick busy = 0;
    RefType type;
    switch (ref.kind) {
      case RefKind::Instr:
        type = RefType::IFetch;
        busy = ref.instrCount;
        stats_.instructions += ref.instrCount;
        break;
      case RefKind::Load:
        type = RefType::Load;
        ++stats_.loads;
        break;
      case RefKind::Store:
        type = RefType::Store;
        ++stats_.stores;
        break;
      default:
        isim_panic("unknown ref kind");
    }

    const AccessOutcome out = mem_.access(node_, type, ref.paddr, now);

    stats_.busy += busy;
    if (ref.kernel)
        stats_.kernelTime += busy;
    stats_.addStall(out.cls, out.stall, ref.kernel);

    return now + busy + out.stall;
}

Tick
InOrderCpu::drain(Tick now)
{
    return now; // nothing outstanding in a blocking pipe
}

} // namespace isim
