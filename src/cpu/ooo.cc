/**
 * @file
 * Out-of-order core implementation.
 */

#include "src/cpu/ooo.hh"

#include <algorithm>

#include "src/ckpt/serializer.hh"
#include "src/coherence/protocol.hh"

namespace isim {

OooCpu::OooCpu(NodeId node, MemorySystem &mem, const OooParams &params)
    : CpuCore(node, mem), params_(params),
      rng_(mix64(0x0000B4A9C4 + node))
{
    isim_assert(params_.width >= 1 && params_.width <= 4,
                "quarter-cycle bookkeeping assumes width <= 4");
    isim_assert(params_.lsPorts >= 1 && params_.lsPorts <= portFree_.size());
}

OooCpu::Quarter
OooCpu::windowBound() const
{
    // Fetch of instruction s must wait for the commit of s - window.
    // windowAnchorQ_ tracks the commit time of the newest record that
    // has aged out of the window; records still inside impose no bound
    // on the current fetch.
    return windowAnchorQ_;
}

void
OooCpu::retireRecord(std::uint64_t seq_end, Quarter commit_q)
{
    windowRing_.emplace_back(seq_end, commit_q);
    while (!windowRing_.empty() &&
           windowRing_.front().first + params_.window <= seq_) {
        windowAnchorQ_ =
            std::max(windowAnchorQ_, windowRing_.front().second);
        windowRing_.pop_front();
    }
}

OooCpu::Quarter
OooCpu::fetchAdvance(std::uint64_t count)
{
    // `width` instructions per cycle == 4/width quarters per instr.
    const Quarter per_instr = 4 / params_.width;
    fetchQ_ = std::max(fetchQ_, windowBound()) + count * per_instr;
    return fetchQ_;
}

void
OooCpu::attribute(MissClass cls, Quarter exposed_q, bool kernel)
{
    switch (cls) {
      case MissClass::L1Hit:
        busyQ_ += exposed_q; // scheduling/port effects, not memory
        break;
      case MissClass::L2Hit:
        l2HitQ_ += exposed_q;
        break;
      case MissClass::Local:
        localQ_ += exposed_q;
        break;
      case MissClass::RemoteClean:
        remoteQ_ += exposed_q;
        break;
      case MissClass::RemoteDirty:
        remoteDirtyQ_ += exposed_q;
        break;
    }
    if (kernel)
        kernelQ_ += exposed_q;
}

void
OooCpu::syncStats()
{
    stats_.busy = toTick(busyQ_);
    stats_.l2HitStall = toTick(l2HitQ_);
    stats_.localStall = toTick(localQ_);
    stats_.remoteStall = toTick(remoteQ_);
    stats_.remoteDirtyStall = toTick(remoteDirtyQ_);
    stats_.kernelTime = toTick(kernelQ_);
}

Tick
OooCpu::consume(const MemRef &ref, Tick now)
{
    // Fast-forward only across a genuine time discontinuity (the
    // scheduler ran something else / the CPU idled): the loop echoes
    // our own commit time back as `now` on normal continuation, and
    // dragging the fetch clock up to it would destroy run-ahead.
    const Quarter now_q = toQ(now);
    if (now_q > commitQ_) {
        commitQ_ = now_q;
        fetchQ_ = now_q;
    }

    const Quarter commit_before = commitQ_;

    if (ref.kind == RefKind::Instr) {
        // Fetch the I-cache line; its latency delays the whole chunk.
        const AccessOutcome out =
            mem_.access(node_, RefType::IFetch, ref.paddr, now);
        seq_ += ref.instrCount;
        stats_.instructions += ref.instrCount;

        Quarter fetch_done = fetchAdvance(ref.instrCount);
        fetch_done += toQ(out.stall); // I-miss stalls the fetch stream
        fetchQ_ = fetch_done;

        // Branch misprediction: squash run-ahead; fetch resumes once
        // the in-order commit point catches up (branch resolution).
        if (params_.mispredictEveryInstrs > 0.0 &&
            rng_.chance(static_cast<double>(ref.instrCount) /
                        params_.mispredictEveryInstrs)) {
            fetchQ_ = std::max(fetchQ_,
                               commitQ_ + toQ(params_.frontendDepth));
        }

        const Quarter per_instr = 4 / params_.width;
        const Quarter bandwidth_commit =
            commitQ_ + ref.instrCount * per_instr;
        const Quarter flow_commit =
            fetch_done + toQ(params_.frontendDepth);
        commitQ_ = std::max(bandwidth_commit, flow_commit);

        // Attribution: the bandwidth component is busy time, anything
        // beyond it is exposed fetch stall of the I-access class.
        const Quarter elapsed = commitQ_ - commit_before;
        const Quarter busy_part =
            std::min<Quarter>(elapsed, ref.instrCount * per_instr);
        busyQ_ += busy_part;
        if (ref.kernel)
            kernelQ_ += busy_part;
        attribute(out.cls, elapsed - busy_part, ref.kernel);

        retireRecord(seq_, commitQ_);
        syncStats();
        return toTick(commitQ_);
    }

    // Load or store.
    const bool is_load = ref.kind == RefKind::Load;
    if (is_load)
        ++stats_.loads;
    else
        ++stats_.stores;

    // Dependence: the producer is depDist memory ops back.
    Quarter dep_ready = 0;
    if (ref.depDist > 0 && ref.depDist <= memIdx_ &&
        ref.depDist < depRingSize) {
        dep_ready =
            memComplete_[(memIdx_ - ref.depDist) % depRingSize] + 4;
    }

    // Load/store port.
    unsigned best_port = 0;
    for (unsigned p = 1; p < params_.lsPorts; ++p) {
        if (portFree_[p] < portFree_[best_port])
            best_port = p;
    }

    const Quarter fetch_avail = fetchQ_ + toQ(params_.frontendDepth);
    Quarter issue =
        std::max({fetch_avail, dep_ready, portFree_[best_port]});
    // Sequential consistency: a store issues only from the head of
    // the window (no speculative stores), so its latency is exposed —
    // the paper's Section 7 explanation for the modest OOO gains.
    if (!is_load)
        issue = std::max(issue, commitQ_);
    portFree_[best_port] = issue + 4; // one cycle of port occupancy

    const AccessOutcome out = mem_.access(
        node_, is_load ? RefType::Load : RefType::Store, ref.paddr,
        toTick(issue));
    const Cycles lat = params_.l1HitLatency + out.stall;
    const Quarter complete = issue + toQ(lat);

    memComplete_[memIdx_ % depRingSize] = complete;
    ++memIdx_;

    // In-order commit at full width.
    commitQ_ = std::max(complete, commitQ_ + 4 / params_.width);

    // The one commit slot is busy time; anything beyond is exposed
    // memory latency of this access's class.
    const Quarter elapsed = commitQ_ - commit_before;
    const Quarter busy_part = std::min<Quarter>(elapsed, 4 / params_.width);
    busyQ_ += busy_part;
    if (ref.kernel)
        kernelQ_ += busy_part;
    attribute(out.cls, elapsed - busy_part, ref.kernel);

    retireRecord(seq_, commitQ_);
    syncStats();
    return toTick(commitQ_);
}

void
OooCpu::resetStats()
{
    CpuCore::resetStats();
    busyQ_ = l2HitQ_ = localQ_ = remoteQ_ = remoteDirtyQ_ = kernelQ_ = 0;
}

Tick
OooCpu::drain(Tick now)
{
    // Commits are computed eagerly, so the local clock is already
    // final; squash speculative state for the next context.
    const Tick t = std::max(now, toTick(commitQ_));
    fetchQ_ = commitQ_ = toQ(t);
    windowRing_.clear();
    windowAnchorQ_ = 0;
    portFree_.fill(0);
    memComplete_.fill(0);
    memIdx_ = 0;
    syncStats();
    return t;
}

void
OooCpu::saveState(ckpt::Serializer &s) const
{
    CpuCore::saveState(s);
    s.u64(fetchQ_);
    s.u64(commitQ_);
    s.u64(seq_);
    for (Quarter q : memComplete_)
        s.u64(q);
    s.u64(memIdx_);
    for (Quarter q : portFree_)
        s.u64(q);
    s.u64(windowRing_.size());
    for (const auto &[seq_end, commit_q] : windowRing_) {
        s.u64(seq_end);
        s.u64(commit_q);
    }
    s.u64(windowAnchorQ_);
    rng_.saveState(s);
    s.u64(busyQ_);
    s.u64(l2HitQ_);
    s.u64(localQ_);
    s.u64(remoteQ_);
    s.u64(remoteDirtyQ_);
    s.u64(kernelQ_);
}

void
OooCpu::restoreState(ckpt::Deserializer &d)
{
    CpuCore::restoreState(d);
    fetchQ_ = d.u64();
    commitQ_ = d.u64();
    seq_ = d.u64();
    for (Quarter &q : memComplete_)
        q = d.u64();
    memIdx_ = d.u64();
    for (Quarter &q : portFree_)
        q = d.u64();
    windowRing_.clear();
    const std::uint64_t nring = d.u64();
    for (std::uint64_t i = 0; i < nring; ++i) {
        const std::uint64_t seq_end = d.u64();
        const Quarter commit_q = d.u64();
        windowRing_.emplace_back(seq_end, commit_q);
    }
    windowAnchorQ_ = d.u64();
    rng_.restoreState(d);
    busyQ_ = d.u64();
    l2HitQ_ = d.u64();
    localQ_ = d.u64();
    remoteQ_ = d.u64();
    remoteDirtyQ_ = d.u64();
    kernelQ_ = d.u64();
}

} // namespace isim
