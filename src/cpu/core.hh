/**
 * @file
 * The CPU timing-model interface shared by the in-order and
 * out-of-order cores.
 */

#ifndef ISIM_CPU_CORE_HH
#define ISIM_CPU_CORE_HH

#include "src/ckpt/fwd.hh"
#include "src/cpu/cpu_stats.hh"
#include "src/trace/record.hh"

namespace isim {

class MemorySystem;

/** Which CPU timing model a machine uses. */
enum class CpuModel {
    InOrder, //!< single-issue pipelined (the paper's medium-speed model)
    OutOfOrder, //!< 4-wide, 64-entry window, 2 LS units (Section 7)
};

const char *cpuModelName(CpuModel model);

inline const char *
cpuModelName(CpuModel model)
{
    return model == CpuModel::InOrder ? "in-order" : "out-of-order";
}

/**
 * A CPU core bound to one node of the memory system. The simulation
 * loop hands it references in program order; the core performs the
 * memory accesses (in global simulated-time order, since the loop
 * always steps the core with the smallest local clock) and accounts
 * execution time into the paper's stall buckets.
 */
class CpuCore
{
  public:
    CpuCore(NodeId node, MemorySystem &mem) : node_(node), mem_(mem) {}
    virtual ~CpuCore() = default;

    CpuCore(const CpuCore &) = delete;
    CpuCore &operator=(const CpuCore &) = delete;

    NodeId node() const { return node_; }
    const CpuStats &stats() const { return stats_; }
    CpuStats &stats() { return stats_; }

    /**
     * Execute one reference starting no earlier than `now`; returns
     * the core's new local time.
     */
    virtual Tick consume(const MemRef &ref, Tick now) = 0;

    /**
     * The atomic (fast-functional) execution path, shared by every
     * core model: performs the reference's memory access through
     * MemorySystem::accessAtomic() and charges the in-order timing
     * rules (one busy cycle per instruction, the table latency of the
     * miss class as stall), without touching the model's own
     * microarchitectural state. For an in-order core on a machine
     * without MC contention this is cycle-identical to consume(); for
     * the out-of-order model it deliberately replaces the scoreboard
     * with the cheap functional charge (docs/EXECMODE.md).
     */
    Tick consumeAtomic(const MemRef &ref, Tick now);

    /**
     * Complete all outstanding work (called before a context switch or
     * when the process blocks); returns the drained local time.
     */
    virtual Tick drain(Tick now) = 0;

    /** Zero the accounting (used at the warm-up/measure boundary). */
    virtual void resetStats() { stats_ = CpuStats{}; }

    /**
     * Checkpoint the core's accounting and (for models that have it)
     * microarchitectural timing state. The base version serializes
     * CpuStats; stateful models override and call it first.
     */
    virtual void saveState(ckpt::Serializer &s) const;
    virtual void restoreState(ckpt::Deserializer &d);

  protected:
    // ckpt: transient(node_): construction-time placement, identical by contract
    NodeId node_;
    MemorySystem &mem_;
    CpuStats stats_;
};

} // namespace isim

#endif // ISIM_CPU_CORE_HH
