/**
 * @file
 * Out-of-order core timing model (paper Section 7): four-wide issue,
 * 64-entry instruction window, four integer units and two load/store
 * units (OLTP executes no floating point).
 *
 * The model is an O(1)-per-reference dataflow scoreboard rather than a
 * cycle-by-cycle pipeline: each memory operation's issue time is the
 * max of its fetch availability, its producer's completion (dependence
 * chains via MemRef::depDist) and a free load/store port; completion
 * adds the memory latency; commit is in order at the core width. Plain
 * instructions flow at full width and are folded in bulk. This is the
 * standard trace-driven OOO approximation: independent misses overlap
 * (memory-level parallelism up to the window), dependent chains
 * serialize — exactly the effects the paper credits/blames for the
 * out-of-order results.
 *
 * Internal times are kept in quarter-cycles so the 4-per-cycle commit
 * bandwidth stays exact in integer arithmetic.
 */

#ifndef ISIM_CPU_OOO_HH
#define ISIM_CPU_OOO_HH

#include <array>
#include <cstdint>
#include <deque>

#include "src/base/random.hh"
#include "src/cpu/core.hh"

namespace isim {

/** Microarchitectural parameters of the OOO core. */
struct OooParams
{
    unsigned width = 4;       //!< fetch/commit width
    unsigned window = 64;     //!< instruction window entries
    unsigned lsPorts = 2;     //!< load/store units
    Cycles frontendDepth = 8; //!< fetch-to-issue pipeline depth
    Cycles l1HitLatency = 3;  //!< load-to-use on an L1 hit

    /**
     * Average instructions between branch mispredictions. OLTP code
     * is branchy and data-dependent; a mispredict squashes run-ahead
     * (fetch restarts at the resolve point), which is the first-order
     * reason the paper measures only ~1.3-1.4x from a 4-wide OOO core
     * (Section 7, consistent with Ranganathan et al.). 0 disables.
     */
    double mispredictEveryInstrs = 50.0;
};

/** The out-of-order core. `final` lets the hot loop devirtualize. */
class OooCpu final : public CpuCore
{
  public:
    OooCpu(NodeId node, MemorySystem &mem,
           const OooParams &params = OooParams{});

    Tick consume(const MemRef &ref, Tick now) override;
    Tick drain(Tick now) override;
    void resetStats() override;
    void saveState(ckpt::Serializer &s) const override;
    void restoreState(ckpt::Deserializer &d) override;

    const OooParams &params() const { return params_; }

  private:
    using Quarter = std::uint64_t; //!< time in quarter-cycles

    static constexpr unsigned depRingSize = 256;

    Quarter toQ(Tick t) const { return t * 4; }
    Tick toTick(Quarter q) const { return q / 4; }

    /** Advance fetch to cover `count` more instructions. */
    Quarter fetchAdvance(std::uint64_t count);
    /** Commit-time lower bound imposed by the finite window. */
    Quarter windowBound() const;
    void retireRecord(std::uint64_t seq_end, Quarter commit_q);
    void attribute(MissClass cls, Quarter exposed_q, bool kernel);

    // ckpt: transient(params_): construction parameter, identical by contract
    OooParams params_;

    Quarter fetchQ_ = 0;   //!< time the last fetched instruction left fetch
    Quarter commitQ_ = 0;  //!< commit time of the last committed instr
    std::uint64_t seq_ = 0; //!< instructions processed

    /** Completion times of recent memory ops, for depDist lookups. */
    std::array<Quarter, depRingSize> memComplete_{};
    std::uint64_t memIdx_ = 0;

    /** Load/store port free times. */
    std::array<Quarter, 8> portFree_{};

    /** Records in the window: (last covered seq, commit time). */
    std::deque<std::pair<std::uint64_t, Quarter>> windowRing_;
    Quarter windowAnchorQ_ = 0;

    Rng rng_; //!< deterministic stream for mispredict draws

    /** Fractional-cycle accumulators flushed into CpuStats. */
    Quarter busyQ_ = 0;
    Quarter l2HitQ_ = 0;
    Quarter localQ_ = 0;
    Quarter remoteQ_ = 0;
    Quarter remoteDirtyQ_ = 0;
    Quarter kernelQ_ = 0;

    void syncStats();
};

} // namespace isim

#endif // ISIM_CPU_OOO_HH
