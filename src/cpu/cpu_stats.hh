/**
 * @file
 * Per-CPU execution-time accounting in the paper's categories:
 * CPU busy, L2-hit stall, local-memory stall, remote stall (2-hop) and
 * remote-dirty stall (3-hop), plus idle time and the kernel share.
 */

#ifndef ISIM_CPU_CPU_STATS_HH
#define ISIM_CPU_CPU_STATS_HH

#include <cstdint>
#include <string>

#include "src/base/types.hh"
#include "src/coherence/protocol.hh"

namespace isim {

namespace stats {
class Registry;
}

/** Execution-time buckets matching the paper's figures. */
struct CpuStats
{
    Tick busy = 0;        //!< instruction issue time
    Tick l2HitStall = 0;  //!< stalls on L1 misses that hit in the L2
    Tick localStall = 0;  //!< stalls on local-memory misses (incl. RAC)
    Tick remoteStall = 0; //!< stalls on 2-hop misses
    Tick remoteDirtyStall = 0; //!< stalls on 3-hop misses
    Tick idle = 0;        //!< no runnable process

    Tick kernelTime = 0; //!< portion of non-idle time in kernel mode

    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /** Non-idle execution time (the quantity the figures plot). */
    Tick nonIdle() const
    {
        return busy + l2HitStall + localStall + remoteStall +
               remoteDirtyStall;
    }

    /** Combined remote stall, as plotted in Figures 6/8/10. */
    Tick remStall() const { return remoteStall + remoteDirtyStall; }

    double kernelFraction() const
    {
        const Tick t = nonIdle();
        return t ? static_cast<double>(kernelTime) / t : 0.0;
    }

    double busyFraction() const
    {
        const Tick t = nonIdle();
        return t ? static_cast<double>(busy) / t : 0.0;
    }

    CpuStats &operator+=(const CpuStats &o)
    {
        busy += o.busy;
        l2HitStall += o.l2HitStall;
        localStall += o.localStall;
        remoteStall += o.remoteStall;
        remoteDirtyStall += o.remoteDirtyStall;
        idle += o.idle;
        kernelTime += o.kernelTime;
        instructions += o.instructions;
        loads += o.loads;
        stores += o.stores;
        return *this;
    }

    /**
     * Register every bucket under `prefix` (e.g. "cpu0"). The struct
     * must outlive the registry — stats are getters over live state.
     */
    void registerStats(stats::Registry &r, const std::string &prefix) const;

    /** Add a stall of the given class. */
    void addStall(MissClass cls, Tick cycles, bool kernel)
    {
        switch (cls) {
          case MissClass::L1Hit:
            break;
          case MissClass::L2Hit:
            l2HitStall += cycles;
            break;
          case MissClass::Local:
            localStall += cycles;
            break;
          case MissClass::RemoteClean:
            remoteStall += cycles;
            break;
          case MissClass::RemoteDirty:
            remoteDirtyStall += cycles;
            break;
        }
        if (kernel)
            kernelTime += cycles;
    }
};

} // namespace isim

#endif // ISIM_CPU_CPU_STATS_HH
