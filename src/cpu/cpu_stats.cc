/**
 * @file
 * CpuStats registration with the metrics registry.
 */

#include "src/cpu/cpu_stats.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/coherence/protocol.hh"
#include "src/cpu/core.hh"
#include "src/stats/registry.hh"

namespace isim {

Tick
CpuCore::consumeAtomic(const MemRef &ref, Tick now)
{
    // The in-order charging rules (InOrderCpu::consume), applied over
    // the functional access path.
    Tick busy = 0;
    RefType type;
    switch (ref.kind) {
      case RefKind::Instr:
        type = RefType::IFetch;
        busy = ref.instrCount;
        stats_.instructions += ref.instrCount;
        break;
      case RefKind::Load:
        type = RefType::Load;
        ++stats_.loads;
        break;
      case RefKind::Store:
        type = RefType::Store;
        ++stats_.stores;
        break;
      default:
        isim_panic("unknown ref kind");
    }

    const AccessOutcome out = mem_.accessAtomic(node_, type, ref.paddr);

    stats_.busy += busy;
    if (ref.kernel)
        stats_.kernelTime += busy;
    stats_.addStall(out.cls, out.stall, ref.kernel);

    return now + busy + out.stall;
}

void
CpuStats::registerStats(stats::Registry &r, const std::string &prefix) const
{
    const CpuStats *s = this;
    r.counter(prefix + ".busy", "instruction issue time", "ticks",
              [s] { return s->busy; });
    r.counter(prefix + ".l2hit_stall",
              "stall on L1 misses that hit in the L2", "ticks",
              [s] { return s->l2HitStall; });
    r.counter(prefix + ".local_stall",
              "stall on local-memory misses (incl. RAC hits)", "ticks",
              [s] { return s->localStall; });
    r.counter(prefix + ".remote_stall", "stall on 2-hop remote misses",
              "ticks", [s] { return s->remoteStall; });
    r.counter(prefix + ".remote_dirty_stall",
              "stall on 3-hop remote-dirty misses", "ticks",
              [s] { return s->remoteDirtyStall; });
    r.counter(prefix + ".idle", "time with no runnable process", "ticks",
              [s] { return s->idle; });
    r.counter(prefix + ".kernel_time",
              "portion of non-idle time in kernel mode", "ticks",
              [s] { return s->kernelTime; });
    r.counter(prefix + ".instructions", "instructions executed", "insts",
              [s] { return s->instructions; });
    r.counter(prefix + ".loads", "load references", "refs",
              [s] { return s->loads; });
    r.counter(prefix + ".stores", "store references", "refs",
              [s] { return s->stores; });
    r.formula(prefix + ".exec_time",
              "non-idle execution time (the figures' y-axis)", "ticks",
              [s] { return static_cast<double>(s->nonIdle()); },
              /*extensive=*/true);
}

void
CpuCore::saveState(ckpt::Serializer &s) const
{
    s.u64(stats_.busy);
    s.u64(stats_.l2HitStall);
    s.u64(stats_.localStall);
    s.u64(stats_.remoteStall);
    s.u64(stats_.remoteDirtyStall);
    s.u64(stats_.idle);
    s.u64(stats_.kernelTime);
    s.u64(stats_.instructions);
    s.u64(stats_.loads);
    s.u64(stats_.stores);
}

void
CpuCore::restoreState(ckpt::Deserializer &d)
{
    stats_.busy = d.u64();
    stats_.l2HitStall = d.u64();
    stats_.localStall = d.u64();
    stats_.remoteStall = d.u64();
    stats_.remoteDirtyStall = d.u64();
    stats_.idle = d.u64();
    stats_.kernelTime = d.u64();
    stats_.instructions = d.u64();
    stats_.loads = d.u64();
    stats_.stores = d.u64();
}

} // namespace isim
