/**
 * @file
 * Figure configuration builders.
 */

#include "src/core/figures.hh"

#include "src/base/logging.hh"

namespace isim {
namespace figures {

namespace {

std::string
sizeLabel(std::uint64_t bytes, unsigned assoc)
{
    return CacheGeometry{bytes, assoc, 64}.shortName();
}

} // namespace

MachineConfig
baseMachine(unsigned cpus, CpuModel model)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.cpuModel = model;
    cfg.level = IntegrationLevel::Base;
    cfg.l2Impl = L2Impl::OffchipDirect;
    cfg.l2 = CacheGeometry{8 * mib, 1, 64};
    cfg.name = "Base 8M1w";
    return cfg;
}

MachineConfig
offchip(unsigned cpus, std::uint64_t l2_bytes, unsigned assoc,
        bool conservative, CpuModel model)
{
    MachineConfig cfg = baseMachine(cpus, model);
    cfg.level = conservative ? IntegrationLevel::ConservativeBase
                             : IntegrationLevel::Base;
    cfg.l2Impl = assoc == 1 ? L2Impl::OffchipDirect
                            : L2Impl::OffchipAssoc;
    if (conservative)
        cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.l2 = CacheGeometry{l2_bytes, assoc, 64};
    cfg.name = std::string(conservative ? "Cons " : "Base ") +
               sizeLabel(l2_bytes, assoc);
    return cfg;
}

MachineConfig
onchip(unsigned cpus, std::uint64_t l2_bytes, unsigned assoc,
       IntegrationLevel level, L2Impl impl, CpuModel model)
{
    isim_assert(l2OnChip(impl));
    MachineConfig cfg = baseMachine(cpus, model);
    cfg.level = level;
    cfg.l2Impl = impl;
    cfg.l2 = CacheGeometry{l2_bytes, assoc, 64};
    const char *lvl = level == IntegrationLevel::L2Int ? "L2 "
                      : level == IntegrationLevel::L2McInt ? "L2+MC "
                                                           : "All ";
    cfg.name = std::string(lvl) + sizeLabel(l2_bytes, assoc) +
               (impl == L2Impl::OnchipDram ? " DRAM" : "");
    return cfg;
}

FigureSpec
figure5()
{
    FigureSpec spec;
    spec.id = "Figure 5";
    spec.title = "OLTP with different off-chip L2 configurations - "
                 "uniprocessor";
    spec.multiprocessor = false;
    // Paper miss bars (normalized to 1M 1-way = 100). The 1-way series
    // is legible from the figure; for the 4-way series the figure dump
    // is ambiguous, so only values implied by the prose are pinned:
    // "going from a 1MB direct-mapped to an 8MB 4-way cache results in
    // almost a 50 times reduction" fixes 8M4w ~ 2, and the remaining
    // bars are derived from Figure 7 via the common 8M1w bar
    // (2M4w = 0.32*78 ~ 25, 1M4w >= 1M8w = 0.32*182 ~ 58).
    const double paper_miss[] = {100, 58, 43, 32, 58, 25, -1, 2, 2};
    const std::uint64_t sizes[] = {1 * mib, 2 * mib, 4 * mib, 8 * mib};
    unsigned i = 0;
    for (unsigned assoc : {1u, 4u}) {
        for (std::uint64_t size : sizes) {
            FigureBar bar;
            bar.config = offchip(1, size, assoc);
            if (paper_miss[i] > 0)
                bar.paperMisses = paper_miss[i];
            ++i;
            if (i == 1)
                bar.paperExecTime = 100.0;
            spec.bars.push_back(bar);
        }
    }
    FigureBar cons;
    cons.config = offchip(1, 8 * mib, 4, /*conservative=*/true);
    cons.paperMisses = paper_miss[i];
    spec.bars.push_back(cons);
    spec.normalizeTo = 0;
    return spec;
}

FigureSpec
figure6()
{
    FigureSpec spec = figure5();
    spec.id = "Figure 6";
    spec.title = "OLTP with different off-chip L2 configurations - "
                 "8 processors";
    spec.multiprocessor = true;
    for (FigureBar &bar : spec.bars) {
        bar.config.numCpus = mpNodes;
        bar.paperMisses.reset(); // MP bars not cleanly legible
        bar.paperExecTime.reset();
    }
    spec.bars[0].paperExecTime = 100.0;
    // Conservative Base is *worse* than the 1M 1-way Base (~108):
    // remote-latency sensitivity (Section 3).
    spec.bars.back().paperExecTime = 108.0;
    return spec;
}

FigureSpec
figure7()
{
    FigureSpec spec;
    spec.id = "Figure 7";
    spec.title = "Impact of on-chip L2 - uniprocessor";
    spec.multiprocessor = false;

    struct Row
    {
        std::uint64_t size;
        unsigned assoc;
        L2Impl impl;
        double paper_miss;
        double paper_exec; //!< <0 == unknown
    };
    const Row rows[] = {
        {1 * mib, 8, L2Impl::OnchipSram, 182, 83},
        {2 * mib, 8, L2Impl::OnchipSram, 47, 70},
        {2 * mib, 4, L2Impl::OnchipSram, 78, 71},
        {2 * mib, 2, L2Impl::OnchipSram, 242, -1},
        {2 * mib, 1, L2Impl::OnchipSram, 396, -1},
        {8 * mib, 8, L2Impl::OnchipDram, 14, -1},
    };

    FigureBar base;
    base.config = offchip(1, 8 * mib, 1);
    base.paperMisses = 100.0;
    base.paperExecTime = 100.0;
    spec.bars.push_back(base);
    for (const Row &row : rows) {
        FigureBar bar;
        bar.config = onchip(1, row.size, row.assoc,
                            IntegrationLevel::L2Int, row.impl);
        bar.paperMisses = row.paper_miss;
        if (row.paper_exec > 0)
            bar.paperExecTime = row.paper_exec;
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;
    return spec;
}

FigureSpec
figure8()
{
    FigureSpec spec = figure7();
    spec.id = "Figure 8";
    spec.title = "Impact of on-chip L2 - 8 processors";
    spec.multiprocessor = true;
    for (FigureBar &bar : spec.bars) {
        bar.config.numCpus = mpNodes;
        bar.paperMisses.reset();
        bar.paperExecTime.reset();
    }
    spec.bars[0].paperMisses = 100.0;
    spec.bars[0].paperExecTime = 100.0;
    // 2M8w: ~1.2x improvement; misses ~74. DRAM 8M8w: ~10% slower
    // than the SRAM option; misses ~30.
    spec.bars[2].paperExecTime = 84.0;
    spec.bars[2].paperMisses = 74.0;
    spec.bars[6].paperExecTime = 93.0;
    spec.bars[6].paperMisses = 30.0;
    return spec;
}

namespace {

FigureSpec
figure10(unsigned cpus)
{
    FigureSpec spec;
    spec.id = "Figure 10";
    spec.title = std::string("Impact of integrating L2, MC, CC/NR - ") +
                 (cpus == 1 ? "uniprocessor" : "8 processors");
    spec.multiprocessor = cpus > 1;

    FigureBar base;
    base.config = baseMachine(cpus);
    base.paperExecTime = 100.0;
    spec.bars.push_back(base);

    FigureBar l2;
    l2.config = onchip(cpus, 2 * mib, 8, IntegrationLevel::L2Int);
    l2.paperExecTime = cpus == 1 ? 70.0 : 84.0;
    spec.bars.push_back(l2);

    FigureBar l2mc;
    l2mc.config = onchip(cpus, 2 * mib, 8, IntegrationLevel::L2McInt);
    l2mc.paperExecTime = cpus == 1 ? 69.0 : 84.0;
    spec.bars.push_back(l2mc);

    if (cpus > 1) {
        FigureBar all;
        all.config = onchip(cpus, 2 * mib, 8, IntegrationLevel::FullInt);
        all.paperExecTime = 70.0; // 1.43x over Base
        spec.bars.push_back(all);
    }
    spec.normalizeTo = 0;
    return spec;
}

} // namespace

FigureSpec
figure10Uni()
{
    return figure10(1);
}

FigureSpec
figure10Mp()
{
    return figure10(mpNodes);
}

FigureSpec
figure11()
{
    FigureSpec spec;
    spec.id = "Figure 11";
    spec.title = "Impact of remote access cache on L2 misses, with and "
                 "without instruction replication - 8 processors, "
                 "1M 4-way L2";
    spec.multiprocessor = true;

    for (const bool repl : {false, true}) {
        for (const bool rac : {false, true}) {
            FigureBar bar;
            bar.config = onchip(mpNodes, 1 * mib, 4,
                                IntegrationLevel::FullInt);
            bar.config.rac = rac;
            bar.config.replicateCode = repl;
            bar.config.name = std::string(rac ? "RAC" : "NoRAC") +
                              (repl ? " Repl" : " NoRepl");
            // The RAC changes the miss *mix*, not the total.
            bar.paperMisses = 100.0;
            spec.bars.push_back(bar);
        }
    }
    spec.normalizeTo = 0;
    return spec;
}

FigureSpec
figure12()
{
    FigureSpec spec;
    spec.id = "Figure 12";
    spec.title = "Performance impact of remote access caches with "
                 "different L2 cache sizes - 8 processors";
    spec.multiprocessor = true;

    auto make = [](std::uint64_t l2_bytes, unsigned assoc, bool rac,
                   const char *name) {
        FigureBar bar;
        bar.config = onchip(mpNodes, l2_bytes, assoc,
                            IntegrationLevel::FullInt);
        bar.config.rac = rac;
        bar.config.replicateCode = true; // Section 6 uses replication
        bar.config.name = name;
        return bar;
    };

    FigureBar a = make(1 * mib, 4, false, "NoRAC 1M4w");
    a.paperExecTime = 100.0;
    FigureBar b = make(1 * mib, 4, true, "RAC 1M4w");
    b.paperExecTime = 95.7; // "4.3% reduction in execution time"
    FigureBar c = make(1280 * kib, 4, false, "NoRAC 1.25M4w");
    c.paperExecTime = 95.0; // "marginally better" than 1M + RAC
    FigureBar d = make(2 * mib, 8, false, "NoRAC 2M8w");
    FigureBar e = make(2 * mib, 8, true, "RAC 2M8w");
    // "performance is almost the same with and without a RAC"
    spec.bars = {a, b, c, d, e};
    spec.normalizeTo = 0;
    return spec;
}

namespace {

FigureSpec
figure13(unsigned cpus)
{
    FigureSpec spec;
    spec.id = "Figure 13";
    spec.title = std::string("Integration with out-of-order "
                             "processors - ") +
                 (cpus == 1 ? "uniprocessor" : "8 processors");
    spec.multiprocessor = cpus > 1;

    FigureBar in_order;
    in_order.config = baseMachine(cpus, CpuModel::InOrder);
    in_order.config.name = "Base InOrder";
    in_order.paperExecTime = cpus == 1 ? 139.0 : 132.0;
    spec.bars.push_back(in_order);

    FigureBar base;
    base.config = baseMachine(cpus, CpuModel::OutOfOrder);
    base.config.name = "Base OOO";
    base.paperExecTime = 100.0;
    spec.bars.push_back(base);

    FigureBar l2;
    l2.config = onchip(cpus, 2 * mib, 8, IntegrationLevel::L2Int,
                       L2Impl::OnchipSram, CpuModel::OutOfOrder);
    l2.config.name = "L2 OOO";
    l2.paperExecTime = cpus == 1 ? 68.0 : 85.0;
    spec.bars.push_back(l2);

    FigureBar l2mc;
    l2mc.config = onchip(cpus, 2 * mib, 8, IntegrationLevel::L2McInt,
                         L2Impl::OnchipSram, CpuModel::OutOfOrder);
    l2mc.config.name = "L2+MC OOO";
    l2mc.paperExecTime = cpus == 1 ? 67.0 : 85.0;
    spec.bars.push_back(l2mc);

    if (cpus > 1) {
        FigureBar all;
        all.config = onchip(cpus, 2 * mib, 8, IntegrationLevel::FullInt,
                            L2Impl::OnchipSram, CpuModel::OutOfOrder);
        all.config.name = "All OOO";
        all.paperExecTime = 70.0;
        spec.bars.push_back(all);
    }
    // Normalize to the Base out-of-order bar, as the paper does.
    spec.normalizeTo = 1;
    return spec;
}

} // namespace

FigureSpec
figure13Uni()
{
    return figure13(1);
}

FigureSpec
figure13Mp()
{
    return figure13(mpNodes);
}

} // namespace figures
} // namespace isim
