/**
 * @file
 * Machine configurations for every figure/table of the paper, with
 * the published normalized bar values embedded where they are legible
 * from the paper (values recovered from the figure dumps are
 * approximate to a few percent; claims in the prose are exact and are
 * what EXPERIMENTS.md and the integration tests check).
 */

#ifndef ISIM_CORE_FIGURES_HH
#define ISIM_CORE_FIGURES_HH

#include "src/core/experiment.hh"

namespace isim {
namespace figures {

/** Paper constants. */
inline constexpr unsigned mpNodes = 8;

/** Baseline machine (Figure 2 parameters) with `cpus` processors. */
MachineConfig baseMachine(unsigned cpus,
                          CpuModel model = CpuModel::InOrder);

/** Off-chip L2 variant ("Base" or "Conservative Base"). */
MachineConfig offchip(unsigned cpus, std::uint64_t l2_bytes,
                      unsigned assoc, bool conservative = false,
                      CpuModel model = CpuModel::InOrder);

/** Integrated-L2 variant at a given integration level. */
MachineConfig onchip(unsigned cpus, std::uint64_t l2_bytes,
                     unsigned assoc, IntegrationLevel level,
                     L2Impl impl = L2Impl::OnchipSram,
                     CpuModel model = CpuModel::InOrder);

FigureSpec figure5();  //!< uniprocessor, off-chip L2 sweep
FigureSpec figure6();  //!< 8-processor, off-chip L2 sweep
FigureSpec figure7();  //!< uniprocessor, integrated L2
FigureSpec figure8();  //!< 8-processor, integrated L2
FigureSpec figure10Uni(); //!< successive integration, uniprocessor
FigureSpec figure10Mp();  //!< successive integration, 8 processors
FigureSpec figure11(); //!< RAC miss mix, with/without replication
FigureSpec figure12(); //!< RAC performance
FigureSpec figure13Uni(); //!< out-of-order, uniprocessor
FigureSpec figure13Mp();  //!< out-of-order, 8 processors

} // namespace figures
} // namespace isim

#endif // ISIM_CORE_FIGURES_HH
