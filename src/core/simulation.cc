/**
 * @file
 * Simulation loop implementation.
 */

#include "src/core/simulation.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/coherence/protocol.hh"
#include "src/cpu/inorder.hh"
#include "src/cpu/ooo.hh"
#include "src/obs/observability.hh"
#include "src/prof/profiler.hh"
#include "src/trace/trace_io.hh"

namespace isim {

Simulation::Simulation(Scheduler &sched, KernelModel &kernel,
                       OltpEngine &engine,
                       std::vector<std::unique_ptr<CpuCore>> &cpus,
                       const SimOptions &options)
    : sched_(sched), kernel_(kernel), engine_(engine), cpus_(cpus),
      options_(options), state_(cpus.size())
{
    if (options_.obs != nullptr)
        tracer_ = &options_.obs->tracer();
}

Tick
Simulation::wallTime() const
{
    Tick t = 0;
    for (const auto &cs : state_)
        t = std::max(t, cs.now);
    return t;
}

Tick
Simulation::consumeOn(CpuCore &core, const MemRef &ref, Tick now)
{
    // Both models are `final`: the casts turn the hottest call in the
    // simulator into a direct, inlinable one.
    if (options_.model == CpuModel::InOrder)
        return static_cast<InOrderCpu &>(core).consume(ref, now);
    return static_cast<OooCpu &>(core).consume(ref, now);
}

Tick
Simulation::drainOn(CpuCore &core, Tick now)
{
    if (options_.model == CpuModel::InOrder)
        return static_cast<InOrderCpu &>(core).drain(now);
    return static_cast<OooCpu &>(core).drain(now);
}

bool
Simulation::steppable(NodeId cpu) const
{
    const CpuState &cs = state_[cpu];
    if (!cs.injected.empty() || sched_.running(cpu) != nullptr ||
        sched_.hasReady(cpu)) {
        return true;
    }
    return sched_.nextWake(cpu) != maxTick;
}

Tick
Simulation::nextEventTime(NodeId cpu) const
{
    const CpuState &cs = state_[cpu];
    if (!cs.injected.empty() || sched_.running(cpu) != nullptr ||
        sched_.hasReady(cpu)) {
        return cs.now;
    }
    const Tick wake = sched_.nextWake(cpu);
    return wake == maxTick ? maxTick : std::max(cs.now, wake);
}

void
Simulation::stepCpu(NodeId cpu)
{
    CpuState &cs = state_[cpu];
    CpuCore &core = *cpus_[cpu];

    // Keep the tracer's clock current so emitters without their own
    // timestamps (latches, transaction phases) stamp events correctly.
    if (ISIM_OBS_ACTIVE(tracer_))
        tracer_->setClock(cpu, cs.now);

    // Pending kernel path (context switch) runs before anything else.
    if (!cs.injected.empty()) {
        const MemRef ref = cs.injected.front();
        cs.injected.pop_front();
        if (options_.trace != nullptr)
            options_.trace->write(cpu, ref);
        cs.now = consumeOn(core, ref, cs.now);
        return;
    }

    Process *running = sched_.running(cpu);
    if (running == nullptr) {
        Process *next = sched_.pickNext(cpu, cs.now);
        if (next != nullptr) {
            kernel_.contextSwitch(cpu, cs.injected);
            cs.quantumStart = cs.now;
            if (ISIM_OBS_ACTIVE(tracer_)) {
                tracer_->instant(obs::EventKind::CtxSwitch, cs.now,
                                 static_cast<std::uint16_t>(cpu), 0,
                                 static_cast<std::uint32_t>(next->pid()));
            }
            return;
        }
        // Idle until the next timed wake.
        const Tick wake = sched_.nextWake(cpu);
        isim_assert(wake != maxTick, "stepCpu on a stalled CPU");
        if (wake > cs.now) {
            core.stats().idle += wake - cs.now;
            cs.now = wake;
        }
        return;
    }

    // Quantum preemption.
    if (options_.quantum > 0 &&
        cs.now - cs.quantumStart >= options_.quantum &&
        sched_.hasReady(cpu)) {
        cs.now = drainOn(core, cs.now);
        sched_.yieldCurrent(cpu);
        return;
    }

    const ProcessStep s = running->step(cs.now);
    switch (s.kind) {
      case StepKind::Ref:
        if (options_.trace != nullptr)
            options_.trace->write(cpu, s.ref);
        cs.now = consumeOn(core, s.ref, cs.now);
        return;
      case StepKind::BlockTimed:
        cs.now = drainOn(core, cs.now);
        sched_.blockCurrent(cpu, cs.now + s.delay);
        return;
      case StepKind::BlockEvent:
        cs.now = drainOn(core, cs.now);
        sched_.blockCurrent(cpu, maxTick);
        return;
      case StepKind::Yield:
        cs.now = drainOn(core, cs.now);
        sched_.yieldCurrent(cpu);
        return;
      case StepKind::Done:
        cs.now = drainOn(core, cs.now);
        sched_.finishCurrent(cpu);
        return;
    }
    isim_panic("unknown step kind");
}

void
Simulation::runUntil(std::uint64_t target)
{
    while (engine_.committedTransactions() < target) {
        NodeId best = invalidNode;
        Tick best_time = maxTick;
        {
            ISIM_PROF_SCOPE_PHASED("sched_scan");
            for (NodeId cpu = 0; cpu < state_.size(); ++cpu) {
                const Tick t = nextEventTime(cpu);
                if (t < best_time) {
                    best_time = t;
                    best = cpu;
                }
            }
        }
        if (best == invalidNode) {
            // Nothing can run anywhere: either all processes exited or
            // every CPU is event-stalled (a workload deadlock).
            bool any_live = false;
            for (NodeId cpu = 0; cpu < state_.size(); ++cpu)
                any_live = any_live || sched_.hasWork(cpu);
            if (any_live)
                isim_panic("simulation deadlock: all CPUs event-stalled");
            break;
        }
        if (options_.obs != nullptr && best_time != maxTick)
            options_.obs->advance(best_time);
        stepCpu(best);
        ++steps_;
        ++timingEvents_;
        if (options_.maxSteps != 0 && steps_ > options_.maxSteps)
            isim_fatal("step limit exceeded (runaway simulation?)");
    }
}

void
Simulation::stepCpuAtomic(NodeId cpu, Tick horizon, NodeId horizon_cpu,
                          std::uint64_t target)
{
    CpuState &cs = state_[cpu];
    CpuCore &core = *cpus_[cpu];

    // True while this CPU would still win the timing loop's min-scan
    // (strict <, lowest index wins ties) against the cached runner-up.
    const auto still_min = [&]() -> bool {
        const Tick t = nextEventTime(cpu);
        return t < horizon ||
               (t == horizon && horizon != maxTick && cpu < horizon_cpu);
    };
    // Whether the burst may take another unit of work without a rescan.
    const auto burst_on = [&]() -> bool {
        if (options_.maxSteps != 0 && steps_ > options_.maxSteps)
            isim_fatal("step limit exceeded (runaway simulation?)");
        return engine_.committedTransactions() < target && still_min();
    };

    for (;;) {
        // Pending kernel path (context switch) runs before anything
        // else, exactly as in timing mode.
        if (!cs.injected.empty()) {
            const MemRef ref = cs.injected.front();
            cs.injected.pop_front();
            if (options_.trace != nullptr)
                options_.trace->write(cpu, ref);
            cs.now = core.consumeAtomic(ref, cs.now);
            ++steps_;
            if (burst_on())
                continue;
            return;
        }

        Process *running = sched_.running(cpu);
        if (running == nullptr) {
            Process *next = sched_.pickNext(cpu, cs.now);
            if (next != nullptr) {
                kernel_.contextSwitch(cpu, cs.injected);
                cs.quantumStart = cs.now;
            } else {
                // Idle until the next timed wake.
                const Tick wake = sched_.nextWake(cpu);
                isim_assert(wake != maxTick, "stepCpu on a stalled CPU");
                if (wake > cs.now) {
                    core.stats().idle += wake - cs.now;
                    cs.now = wake;
                }
            }
            ++steps_;
            if (burst_on())
                continue;
            return;
        }

        // Quantum preemption. Timing mode drains the core first; the
        // atomic charge keeps no in-flight core state, so the drain is
        // an identity here and is skipped.
        if (options_.quantum > 0 &&
            cs.now - cs.quantumStart >= options_.quantum &&
            sched_.hasReady(cpu)) {
            sched_.yieldCurrent(cpu);
            ++steps_;
            if (burst_on())
                continue;
            return;
        }

        // Batched reference drain: while generated references are
        // queued, Process::step() is contractually a pop of the queue
        // front with no other effect, so consume them directly and
        // skip the per-reference virtual step dispatch.
        if (running->hasPending()) {
            const MemRef ref = running->popPendingRef();
            if (options_.trace != nullptr)
                options_.trace->write(cpu, ref);
            cs.now = core.consumeAtomic(ref, cs.now);
            ++steps_;
            if (burst_on())
                continue;
            return;
        }

        // Refill / process state-machine advance. This may wake
        // processes on OTHER CPUs (log group commits, lock releases),
        // which stales the cached horizon — always return to the
        // caller's rescan after it runs.
        const ProcessStep s = running->step(cs.now);
        ++steps_;
        switch (s.kind) {
          case StepKind::Ref:
            if (options_.trace != nullptr)
                options_.trace->write(cpu, s.ref);
            cs.now = core.consumeAtomic(s.ref, cs.now);
            return;
          case StepKind::BlockTimed:
            sched_.blockCurrent(cpu, cs.now + s.delay);
            return;
          case StepKind::BlockEvent:
            sched_.blockCurrent(cpu, maxTick);
            return;
          case StepKind::Yield:
            sched_.yieldCurrent(cpu);
            return;
          case StepKind::Done:
            sched_.finishCurrent(cpu);
            return;
        }
        isim_panic("unknown step kind");
    }
}

void
Simulation::runUntilAtomic(std::uint64_t target)
{
    while (engine_.committedTransactions() < target) {
        // The timing scan, plus the runner-up: the burst below only
        // needs to rescan once the chosen CPU falls behind it.
        NodeId best = invalidNode;
        Tick best_time = maxTick;
        NodeId second = invalidNode;
        Tick second_time = maxTick;
        {
            ISIM_PROF_SCOPE_PHASED("sched_scan");
            for (NodeId cpu = 0; cpu < state_.size(); ++cpu) {
                const Tick t = nextEventTime(cpu);
                if (t < best_time) {
                    second_time = best_time;
                    second = best;
                    best_time = t;
                    best = cpu;
                } else if (t < second_time) {
                    second_time = t;
                    second = cpu;
                }
            }
        }
        if (best == invalidNode) {
            // Nothing can run anywhere: either all processes exited or
            // every CPU is event-stalled (a workload deadlock).
            bool any_live = false;
            for (NodeId cpu = 0; cpu < state_.size(); ++cpu)
                any_live = any_live || sched_.hasWork(cpu);
            if (any_live)
                isim_panic("simulation deadlock: all CPUs event-stalled");
            break;
        }
        if (options_.maxSteps != 0 && steps_ > options_.maxSteps)
            isim_fatal("step limit exceeded (runaway simulation?)");
        stepCpuAtomic(best, second_time, second, target);
    }
}

void
Simulation::runUntilCommitted(std::uint64_t target, ExecMode mode)
{
    if (mode == ExecMode::Atomic)
        runUntilAtomic(target);
    else
        runUntil(target);
}

void
Simulation::runUntilWarmupDone(ExecMode mode)
{
    runUntilCommitted(engine_.params().warmupTransactions, mode);
}

void
Simulation::runUntilMeasurementDone(ExecMode mode)
{
    runUntilCommitted(engine_.params().warmupTransactions +
                          engine_.params().transactions,
                      mode);
}

void
SimState::saveState(ckpt::Serializer &s) const
{
    s.u64(steps);
    s.u64(cpus.size());
    for (const Cpu &c : cpus) {
        s.u64(c.now);
        s.u64(c.quantumStart);
        s.u64(c.injected.size());
        for (const MemRef &ref : c.injected)
            s.memRef(ref);
    }
}

void
SimState::restoreState(ckpt::Deserializer &d)
{
    steps = d.u64();
    const std::uint64_t ncpus = d.u64();
    cpus.assign(ncpus, Cpu{});
    for (Cpu &c : cpus) {
        c.now = d.u64();
        c.quantumStart = d.u64();
        const std::uint64_t ninjected = d.u64();
        for (std::uint64_t i = 0; i < ninjected; ++i)
            c.injected.push_back(d.memRef());
    }
}

SimState
Simulation::captureState() const
{
    SimState st;
    st.cpus = state_;
    st.steps = steps_;
    return st;
}

void
Simulation::restoreState(const SimState &state)
{
    if (state.cpus.size() != state_.size()) {
        isim_fatal("checkpoint CPU count mismatch: image has %zu, "
                   "machine has %zu",
                   state.cpus.size(), state_.size());
    }
    state_ = state.cpus;
    steps_ = state.steps;
}

} // namespace isim
