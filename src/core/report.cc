/**
 * @file
 * Report formatting implementation.
 */

#include "src/core/report.hh"

#include <ostream>
#include <sstream>

#include "src/base/logging.hh"

namespace isim {

namespace {

double
norm(double value, double reference)
{
    return reference > 0.0 ? 100.0 * value / reference : 0.0;
}

} // namespace

Table
executionTable(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    isim_assert(spec.normalizeTo < result.runs.size());
    const double ref = static_cast<double>(
        result.runs[spec.normalizeTo].execTime());

    Table t({"Config", "CPU", "L2Hit", "LocStall", "RemStall", "Total",
             "Paper"});
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        const double total = static_cast<double>(r.execTime());
        t.row()
            .cell(r.name)
            .num(norm(static_cast<double>(r.cpu.busy), ref))
            .num(norm(static_cast<double>(r.cpu.l2HitStall), ref))
            .num(norm(static_cast<double>(r.cpu.localStall), ref))
            .num(norm(static_cast<double>(r.cpu.remStall()), ref))
            .num(norm(total, ref))
            .cell(spec.bars[i].paperExecTime
                      ? formatNum(*spec.bars[i].paperExecTime)
                      : "-");
    }
    return t;
}

Table
missTable(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    const double ref = static_cast<double>(
        result.runs[spec.normalizeTo].misses.totalL2Misses());

    Table t({"Config", "I-Loc", "I-Rem", "D-Loc", "D-RemCl", "D-RemDrt",
             "Total", "Paper"});
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const NodeProtocolStats &m = result.runs[i].misses;
        t.row()
            .cell(result.runs[i].name)
            .num(norm(static_cast<double>(m.instrLocal), ref))
            .num(norm(static_cast<double>(m.instrRemote), ref))
            .num(norm(static_cast<double>(m.dataLocal), ref))
            .num(norm(static_cast<double>(m.dataRemoteClean), ref))
            .num(norm(static_cast<double>(m.dataRemoteDirty), ref))
            .num(norm(static_cast<double>(m.totalL2Misses()), ref))
            .cell(spec.bars[i].paperMisses
                      ? formatNum(*spec.bars[i].paperMisses)
                      : "-");
    }
    return t;
}

Table
detailTable(const FigureResult &result)
{
    Table t({"Config", "Instr(M)", "Miss/1kI", "TPS", "Kernel%",
             "Busy%", "Inval/Store%", "RACHit%", "Consist"});
    for (const RunResult &r : result.runs) {
        const double instr_m =
            static_cast<double>(r.cpu.instructions) / 1e6;
        const double mpki =
            r.cpu.instructions
                ? 1000.0 *
                      static_cast<double>(r.misses.totalL2Misses()) /
                      static_cast<double>(r.cpu.instructions)
                : 0.0;
        const double inval_rate =
            r.misses.storeRefs
                ? 100.0 *
                      static_cast<double>(r.misses.storesCausingInval) /
                      static_cast<double>(r.misses.storeRefs)
                : 0.0;
        t.row()
            .cell(r.name)
            .num(instr_m)
            .num(mpki, 2)
            .num(r.tps(), 0)
            .num(100.0 * r.cpu.kernelFraction())
            .num(100.0 * r.cpu.busyFraction())
            .num(inval_rate, 2)
            .num(100.0 * r.rac.hitRate())
            .cell(r.dbConsistent ? "ok" : "FAIL");
    }
    return t;
}

void
printFigureReport(std::ostream &os, const FigureResult &result)
{
    os << "== " << result.spec.id << ": " << result.spec.title
       << " ==\n\n";
    os << "Normalized execution time (bar " << result.spec.normalizeTo
       << " = 100):\n";
    executionTable(result).print(os);
    os << "\nNormalized L2 misses:\n";
    missTable(result).print(os);
    os << "\nRun details:\n";
    detailTable(result).print(os);
    os << "\n";
}

namespace {

void
jsonKv(std::ostream &os, const char *key, double value, bool comma = true)
{
    os << "\"" << key << "\": " << formatNum(value, 4)
       << (comma ? ", " : "");
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
figureToJson(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    const double ref = static_cast<double>(
        result.runs[spec.normalizeTo].execTime());
    const double ref_miss = static_cast<double>(
        result.runs[spec.normalizeTo].misses.totalL2Misses());

    std::ostringstream os;
    os << "{\n  \"id\": \"" << jsonEscape(spec.id) << "\",\n";
    os << "  \"title\": \"" << jsonEscape(spec.title) << "\",\n";
    os << "  \"bars\": [\n";
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        os << "    {\"name\": \"" << jsonEscape(r.name) << "\", ";
        jsonKv(os, "exec_norm",
               norm(static_cast<double>(r.execTime()), ref));
        jsonKv(os, "exec_cycles", static_cast<double>(r.execTime()));
        jsonKv(os, "busy", static_cast<double>(r.cpu.busy));
        jsonKv(os, "l2hit_stall",
               static_cast<double>(r.cpu.l2HitStall));
        jsonKv(os, "local_stall",
               static_cast<double>(r.cpu.localStall));
        jsonKv(os, "remote_stall",
               static_cast<double>(r.cpu.remStall()));
        jsonKv(os, "misses_norm",
               norm(static_cast<double>(r.misses.totalL2Misses()),
                    ref_miss));
        jsonKv(os, "miss_instr_local",
               static_cast<double>(r.misses.instrLocal));
        jsonKv(os, "miss_instr_remote",
               static_cast<double>(r.misses.instrRemote));
        jsonKv(os, "miss_data_local",
               static_cast<double>(r.misses.dataLocal));
        jsonKv(os, "miss_data_2hop",
               static_cast<double>(r.misses.dataRemoteClean));
        jsonKv(os, "miss_data_3hop",
               static_cast<double>(r.misses.dataRemoteDirty));
        jsonKv(os, "tps", r.tps());
        if (spec.bars[i].paperExecTime)
            jsonKv(os, "paper_exec", *spec.bars[i].paperExecTime);
        if (spec.bars[i].paperMisses)
            jsonKv(os, "paper_misses", *spec.bars[i].paperMisses);
        jsonKv(os, "consistent", r.dbConsistent ? 1 : 0, false);
        os << "}" << (i + 1 < result.runs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
summaryLine(const FigureResult &result)
{
    std::ostringstream os;
    const double ref = static_cast<double>(
        result.runs[result.spec.normalizeTo].execTime());
    os << result.spec.id << ":";
    for (const RunResult &r : result.runs) {
        os << " " << r.name << "="
           << formatNum(norm(static_cast<double>(r.execTime()), ref));
    }
    return os.str();
}

} // namespace isim
