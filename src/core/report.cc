/**
 * @file
 * Report formatting implementation. Tables and figure JSON read their
 * numbers from the run's registry snapshot (RunResult::stats), so the
 * report can only show what the manifest also carries — a stat that is
 * wrong in one place is wrong in both, never silently different.
 */

#include "src/core/report.hh"

#include <cmath>
#include <ostream>
#include <sstream>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/stats/registry.hh"

namespace isim {

namespace {

double
norm(double value, double reference)
{
    return reference > 0.0 ? 100.0 * value / reference : 0.0;
}

/** Registry-snapshot lookup; a missing name is a wiring bug. */
double
stat(const RunResult &r, const std::string &name)
{
    const stats::Sample *s = stats::findSample(r.stats, name);
    if (s == nullptr)
        isim_panic("run '%s' has no stat '%s'", r.name.c_str(),
                   name.c_str());
    return s->number();
}

/** Lookup for stats that exist only in some configs (RAC). */
double
statOr(const RunResult &r, const std::string &name, double fallback)
{
    const stats::Sample *s = stats::findSample(r.stats, name);
    return s != nullptr ? s->number() : fallback;
}

/** Combined 2-hop + 3-hop remote stall, as plotted in Figures 6/8/10. */
double
remStall(const RunResult &r)
{
    return stat(r, "cpu.remote_stall") + stat(r, "cpu.remote_dirty_stall");
}

const stats::DistSummary &
txnLatency(const RunResult &r)
{
    const stats::Sample *s = stats::findSample(r.stats, "oltp.txn.latency");
    if (s == nullptr)
        isim_panic("run '%s' has no oltp.txn.latency distribution",
                   r.name.c_str());
    return s->dist;
}

} // namespace

Table
executionTable(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    isim_assert(spec.normalizeTo < result.runs.size());
    const double ref =
        stat(result.runs[spec.normalizeTo], "cpu.exec_time");

    Table t({"Config", "CPU", "L2Hit", "LocStall", "RemStall", "Total",
             "Paper"});
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        t.row()
            .cell(r.name)
            .num(norm(stat(r, "cpu.busy"), ref))
            .num(norm(stat(r, "cpu.l2hit_stall"), ref))
            .num(norm(stat(r, "cpu.local_stall"), ref))
            .num(norm(remStall(r), ref))
            .num(norm(stat(r, "cpu.exec_time"), ref))
            .cell(spec.bars[i].paperExecTime
                      ? formatNum(*spec.bars[i].paperExecTime)
                      : "-");
    }
    return t;
}

Table
missTable(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    const double ref =
        stat(result.runs[spec.normalizeTo], "l2.miss.total");

    Table t({"Config", "I-Loc", "I-Rem", "D-Loc", "D-RemCl", "D-RemDrt",
             "Total", "Paper"});
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        t.row()
            .cell(r.name)
            .num(norm(stat(r, "l2.miss.instr_local"), ref))
            .num(norm(stat(r, "l2.miss.instr_remote"), ref))
            .num(norm(stat(r, "l2.miss.local"), ref))
            .num(norm(stat(r, "l2.miss.remote_clean"), ref))
            .num(norm(stat(r, "l2.miss.remote_dirty"), ref))
            .num(norm(stat(r, "l2.miss.total"), ref))
            .cell(spec.bars[i].paperMisses
                      ? formatNum(*spec.bars[i].paperMisses)
                      : "-");
    }
    return t;
}

Table
detailTable(const FigureResult &result)
{
    Table t({"Config", "Instr(M)", "Miss/1kI", "TPS", "Lat-p50us",
             "Lat-p95us", "Lat-p99us", "Kernel%", "Busy%",
             "Inval/Store%", "RACHit%", "Consist"});
    for (const RunResult &r : result.runs) {
        const double stores = stat(r, "l2.store_refs");
        const double inval_rate =
            stores > 0.0
                ? 100.0 * stat(r, "l2.stores_causing_inval") / stores
                : 0.0;
        const stats::DistSummary &lat = txnLatency(r);
        t.row()
            .cell(r.name)
            .num(stat(r, "cpu.instructions") / 1e6)
            .num(stat(r, "l2.mpki"), 2)
            .num(r.tps(), 0)
            .num(lat.p50, 0)
            .num(lat.p95, 0)
            .num(lat.p99, 0)
            .num(100.0 * stat(r, "cpu.kernel_frac"))
            .num(100.0 * stat(r, "cpu.busy_frac"))
            .num(inval_rate, 2)
            .num(100.0 * statOr(r, "rac.hit_rate", 0.0))
            .cell(r.dbConsistent ? "ok" : "FAIL");
    }
    return t;
}

void
printFigureReport(std::ostream &os, const FigureResult &result)
{
    os << "== " << result.spec.id << ": " << result.spec.title
       << " ==\n\n";
    os << "Normalized execution time (bar " << result.spec.normalizeTo
       << " = 100):\n";
    executionTable(result).print(os);
    os << "\nNormalized L2 misses:\n";
    missTable(result).print(os);
    os << "\nRun details:\n";
    detailTable(result).print(os);
    os << "\n";
}

std::string
figureToJson(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    const double ref =
        stat(result.runs[spec.normalizeTo], "cpu.exec_time");
    const double ref_miss =
        stat(result.runs[spec.normalizeTo], "l2.miss.total");

    std::ostringstream os;
    JsonWriter w(os, /*pretty_depth=*/2);
    w.beginObject();
    w.kv("id", spec.id);
    w.kv("title", spec.title);
    w.key("bars").beginArray();
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        const stats::DistSummary &lat = txnLatency(r);
        w.beginObject();
        w.kv("name", r.name);
        w.kv("exec_norm", norm(stat(r, "cpu.exec_time"), ref));
        w.kv("exec_cycles", stat(r, "cpu.exec_time"));
        w.kv("busy", stat(r, "cpu.busy"));
        w.kv("l2hit_stall", stat(r, "cpu.l2hit_stall"));
        w.kv("local_stall", stat(r, "cpu.local_stall"));
        w.kv("remote_stall", remStall(r));
        w.kv("misses_norm", norm(stat(r, "l2.miss.total"), ref_miss));
        w.kv("miss_instr_local", stat(r, "l2.miss.instr_local"));
        w.kv("miss_instr_remote", stat(r, "l2.miss.instr_remote"));
        w.kv("miss_data_local", stat(r, "l2.miss.local"));
        w.kv("miss_data_2hop", stat(r, "l2.miss.remote_clean"));
        w.kv("miss_data_3hop", stat(r, "l2.miss.remote_dirty"));
        w.kv("tps", r.tps());
        w.kv("txn_lat_mean_us", lat.mean);
        w.kv("txn_lat_p50_us", lat.p50); // null when unresolvable
        w.kv("txn_lat_p95_us", lat.p95);
        w.kv("txn_lat_p99_us", lat.p99);
        if (spec.bars[i].paperExecTime)
            w.kv("paper_exec", *spec.bars[i].paperExecTime);
        if (spec.bars[i].paperMisses)
            w.kv("paper_misses", *spec.bars[i].paperMisses);
        w.kv("consistent", r.dbConsistent ? 1 : 0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

std::string
figureStatsJson(const FigureResult &result)
{
    stats::Manifest m;
    m.figure = result.spec.id;
    m.title = result.spec.title;
    m.bars.reserve(result.runs.size());
    for (const RunResult &r : result.runs) {
        stats::ManifestBar bar;
        bar.name = r.name;
        if (!r.resultKey.empty()) {
            bar.meta.present = true;
            bar.meta.key = r.resultKey;
            bar.meta.configDigest = r.configDigest;
            bar.meta.seed = r.seed;
            bar.meta.simWallMs =
                static_cast<double>(r.wallTime) / 1e6; // sim ns -> ms
            // Host time is nondeterministic; only self-profiling runs
            // echo it (keeps default manifests byte-comparable).
            bar.meta.hostWallMs = r.hostWallMs;
            if (r.warmupMode != ExecMode::Timing)
                bar.meta.warmupMode = execModeName(r.warmupMode);
            if (r.execMode != ExecMode::Timing)
                bar.meta.execMode = execModeName(r.execMode);
            if (r.sampling.enabled) {
                bar.meta.sampleMode =
                    sample::sampleModeName(r.sampling.mode);
                bar.meta.sampleFf = r.sampling.ff;
                bar.meta.sampleMeasure = r.sampling.measure;
                bar.meta.sampleWarm = r.sampling.warm;
                bar.meta.sampleWindows = r.sampling.windows;
            }
        }
        bar.stats = r.stats;
        bar.epochs = r.epochs;
        bar.sampling = r.sampling;
        m.bars.push_back(std::move(bar));
    }
    return manifestToJson(m);
}

std::string
summaryLine(const FigureResult &result)
{
    std::ostringstream os;
    const double ref =
        stat(result.runs[result.spec.normalizeTo], "cpu.exec_time");
    os << result.spec.id << ":";
    for (const RunResult &r : result.runs) {
        os << " " << r.name << "="
           << formatNum(norm(stat(r, "cpu.exec_time"), ref));
    }
    return os.str();
}

} // namespace isim
