/**
 * @file
 * Report formatting implementation.
 */

#include "src/core/report.hh"

#include <ostream>
#include <sstream>

#include "src/base/json.hh"
#include "src/base/logging.hh"

namespace isim {

namespace {

double
norm(double value, double reference)
{
    return reference > 0.0 ? 100.0 * value / reference : 0.0;
}

} // namespace

Table
executionTable(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    isim_assert(spec.normalizeTo < result.runs.size());
    const double ref = static_cast<double>(
        result.runs[spec.normalizeTo].execTime());

    Table t({"Config", "CPU", "L2Hit", "LocStall", "RemStall", "Total",
             "Paper"});
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        const double total = static_cast<double>(r.execTime());
        t.row()
            .cell(r.name)
            .num(norm(static_cast<double>(r.cpu.busy), ref))
            .num(norm(static_cast<double>(r.cpu.l2HitStall), ref))
            .num(norm(static_cast<double>(r.cpu.localStall), ref))
            .num(norm(static_cast<double>(r.cpu.remStall()), ref))
            .num(norm(total, ref))
            .cell(spec.bars[i].paperExecTime
                      ? formatNum(*spec.bars[i].paperExecTime)
                      : "-");
    }
    return t;
}

Table
missTable(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    const double ref = static_cast<double>(
        result.runs[spec.normalizeTo].misses.totalL2Misses());

    Table t({"Config", "I-Loc", "I-Rem", "D-Loc", "D-RemCl", "D-RemDrt",
             "Total", "Paper"});
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const NodeProtocolStats &m = result.runs[i].misses;
        t.row()
            .cell(result.runs[i].name)
            .num(norm(static_cast<double>(m.instrLocal), ref))
            .num(norm(static_cast<double>(m.instrRemote), ref))
            .num(norm(static_cast<double>(m.dataLocal), ref))
            .num(norm(static_cast<double>(m.dataRemoteClean), ref))
            .num(norm(static_cast<double>(m.dataRemoteDirty), ref))
            .num(norm(static_cast<double>(m.totalL2Misses()), ref))
            .cell(spec.bars[i].paperMisses
                      ? formatNum(*spec.bars[i].paperMisses)
                      : "-");
    }
    return t;
}

Table
detailTable(const FigureResult &result)
{
    Table t({"Config", "Instr(M)", "Miss/1kI", "TPS", "Lat-p50us",
             "Lat-p95us", "Lat-p99us", "Kernel%", "Busy%",
             "Inval/Store%", "RACHit%", "Consist"});
    for (const RunResult &r : result.runs) {
        const double instr_m =
            static_cast<double>(r.cpu.instructions) / 1e6;
        const double mpki =
            r.cpu.instructions
                ? 1000.0 *
                      static_cast<double>(r.misses.totalL2Misses()) /
                      static_cast<double>(r.cpu.instructions)
                : 0.0;
        const double inval_rate =
            r.misses.storeRefs
                ? 100.0 *
                      static_cast<double>(r.misses.storesCausingInval) /
                      static_cast<double>(r.misses.storeRefs)
                : 0.0;
        t.row()
            .cell(r.name)
            .num(instr_m)
            .num(mpki, 2)
            .num(r.tps(), 0)
            .num(static_cast<double>(r.txnLatP50Us), 0)
            .num(static_cast<double>(r.txnLatP95Us), 0)
            .num(static_cast<double>(r.txnLatP99Us), 0)
            .num(100.0 * r.cpu.kernelFraction())
            .num(100.0 * r.cpu.busyFraction())
            .num(inval_rate, 2)
            .num(100.0 * r.rac.hitRate())
            .cell(r.dbConsistent ? "ok" : "FAIL");
    }
    return t;
}

void
printFigureReport(std::ostream &os, const FigureResult &result)
{
    os << "== " << result.spec.id << ": " << result.spec.title
       << " ==\n\n";
    os << "Normalized execution time (bar " << result.spec.normalizeTo
       << " = 100):\n";
    executionTable(result).print(os);
    os << "\nNormalized L2 misses:\n";
    missTable(result).print(os);
    os << "\nRun details:\n";
    detailTable(result).print(os);
    os << "\n";
}

std::string
figureToJson(const FigureResult &result)
{
    const FigureSpec &spec = result.spec;
    const double ref = static_cast<double>(
        result.runs[spec.normalizeTo].execTime());
    const double ref_miss = static_cast<double>(
        result.runs[spec.normalizeTo].misses.totalL2Misses());

    std::ostringstream os;
    JsonWriter w(os, /*pretty_depth=*/2);
    w.beginObject();
    w.kv("id", spec.id);
    w.kv("title", spec.title);
    w.key("bars").beginArray();
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        w.beginObject();
        w.kv("name", r.name);
        w.kv("exec_norm", norm(static_cast<double>(r.execTime()), ref));
        w.kv("exec_cycles", static_cast<double>(r.execTime()));
        w.kv("busy", static_cast<double>(r.cpu.busy));
        w.kv("l2hit_stall", static_cast<double>(r.cpu.l2HitStall));
        w.kv("local_stall", static_cast<double>(r.cpu.localStall));
        w.kv("remote_stall", static_cast<double>(r.cpu.remStall()));
        w.kv("misses_norm",
             norm(static_cast<double>(r.misses.totalL2Misses()),
                  ref_miss));
        w.kv("miss_instr_local",
             static_cast<double>(r.misses.instrLocal));
        w.kv("miss_instr_remote",
             static_cast<double>(r.misses.instrRemote));
        w.kv("miss_data_local",
             static_cast<double>(r.misses.dataLocal));
        w.kv("miss_data_2hop",
             static_cast<double>(r.misses.dataRemoteClean));
        w.kv("miss_data_3hop",
             static_cast<double>(r.misses.dataRemoteDirty));
        w.kv("tps", r.tps());
        w.kv("txn_lat_mean_us", r.txnLatMeanUs);
        w.kv("txn_lat_p50_us", r.txnLatP50Us);
        w.kv("txn_lat_p95_us", r.txnLatP95Us);
        w.kv("txn_lat_p99_us", r.txnLatP99Us);
        if (spec.bars[i].paperExecTime)
            w.kv("paper_exec", *spec.bars[i].paperExecTime);
        if (spec.bars[i].paperMisses)
            w.kv("paper_misses", *spec.bars[i].paperMisses);
        w.kv("consistent", r.dbConsistent ? 1 : 0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

std::string
summaryLine(const FigureResult &result)
{
    std::ostringstream os;
    const double ref = static_cast<double>(
        result.runs[result.spec.normalizeTo].execTime());
    os << result.spec.id << ":";
    for (const RunResult &r : result.runs) {
        os << " " << r.name << "="
           << formatNum(norm(static_cast<double>(r.execTime()), ref));
    }
    return os.str();
}

} // namespace isim
