/**
 * @file
 * Experiment harness implementation.
 */

#include "src/core/experiment.hh"

#include <algorithm>
#include <cstdlib>

#include "src/base/logging.hh"

namespace isim {

void
ExperimentRunner::applyEnvOverrides(WorkloadParams &params)
{
    if (const char *txns = std::getenv("ISIM_TXNS")) {
        const long v = std::atol(txns);
        if (v > 0)
            params.transactions = static_cast<std::uint64_t>(v);
    }
    if (const char *warm = std::getenv("ISIM_WARMUP")) {
        const long v = std::atol(warm);
        if (v >= 0)
            params.warmupTransactions = static_cast<std::uint64_t>(v);
    }
}

RunResult
ExperimentRunner::runOne(const MachineConfig &config) const
{
    MachineConfig cfg = config;
    applyEnvOverrides(cfg.workload);
    if (verbose_)
        isim_inform("running %s ...", cfg.name.c_str());
    Machine machine(cfg);
    RunResult r = machine.run();
    if (!r.dbConsistent)
        isim_warn("%s: TPC-B consistency check FAILED", cfg.name.c_str());
    return r;
}

RunResult
ExperimentRunner::runObserved(const MachineConfig &config,
                              obs::Observability &o) const
{
    MachineConfig cfg = config;
    applyEnvOverrides(cfg.workload);
    if (verbose_)
        isim_inform("running %s (observed) ...", cfg.name.c_str());
    Machine machine(cfg);
    machine.attachObservability(&o);
    RunResult r = machine.run();
    if (!r.dbConsistent)
        isim_warn("%s: TPC-B consistency check FAILED", cfg.name.c_str());
    const std::string written = o.writeOutputs();
    if (verbose_ && !written.empty())
        isim_inform("%s: wrote %s", cfg.name.c_str(), written.c_str());
    return r;
}

FigureResult
ExperimentRunner::run(const FigureSpec &spec) const
{
    FigureResult result;
    result.spec = spec;
    result.runs.reserve(spec.bars.size());
    const std::size_t observed =
        spec.bars.empty()
            ? 0
            : std::min(obsConfig_.traceBar, spec.bars.size() - 1);
    for (std::size_t i = 0; i < spec.bars.size(); ++i) {
        if (obsConfig_.any() && i == observed) {
            obs::Observability o(obsConfig_);
            result.runs.push_back(runObserved(spec.bars[i].config, o));
        } else {
            result.runs.push_back(runOne(spec.bars[i].config));
        }
    }
    return result;
}

} // namespace isim
