/**
 * @file
 * Experiment harness implementation.
 */

#include "src/core/experiment.hh"

#include <cstdlib>

#include "src/base/logging.hh"

namespace isim {

void
ExperimentRunner::applyEnvOverrides(WorkloadParams &params)
{
    if (const char *txns = std::getenv("ISIM_TXNS")) {
        const long v = std::atol(txns);
        if (v > 0)
            params.transactions = static_cast<std::uint64_t>(v);
    }
    if (const char *warm = std::getenv("ISIM_WARMUP")) {
        const long v = std::atol(warm);
        if (v >= 0)
            params.warmupTransactions = static_cast<std::uint64_t>(v);
    }
}

RunResult
ExperimentRunner::runOne(const MachineConfig &config) const
{
    MachineConfig cfg = config;
    applyEnvOverrides(cfg.workload);
    if (verbose_)
        isim_inform("running %s ...", cfg.name.c_str());
    Machine machine(cfg);
    RunResult r = machine.run();
    if (!r.dbConsistent)
        isim_warn("%s: TPC-B consistency check FAILED", cfg.name.c_str());
    return r;
}

FigureResult
ExperimentRunner::run(const FigureSpec &spec) const
{
    FigureResult result;
    result.spec = spec;
    result.runs.reserve(spec.bars.size());
    for (const FigureBar &bar : spec.bars)
        result.runs.push_back(runOne(bar.config));
    return result;
}

} // namespace isim
