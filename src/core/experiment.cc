/**
 * @file
 * Experiment harness implementation: the parallel run engine.
 *
 * Thread-safety audit (see tests/test_parallel.cc, which runs the
 * engine under -fsanitize=thread in CI): a Machine owns every piece
 * of mutable state it touches — VM, kernel, OLTP engine (with its
 * Rng), scheduler, memory system, CPU cores — and an observed run
 * owns its obs::Observability bundle, so concurrent runs share only
 * immutable data. The remaining process-wide state is read-only
 * while workers run: the logging flags (setQuiet / setPanicThrow),
 * the invariant-audit period (resolved at startup, see
 * verify::setAuditPeriod), and the RunOptions themselves. stderr
 * progress lines are serialized by a mutex so verbose output never
 * interleaves.
 */

#include "src/core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <exception>
#include <filesystem>
#include <mutex>
#include <thread>

#include "src/base/logging.hh"
#include "src/ckpt/checkpoint.hh"
#include "src/core/sweep.hh"
#include "src/prof/profiler.hh"
#include "src/sample/controller.hh"
#include "src/stats/manifest.hh"

namespace isim {

namespace {

/** Serializes the runner's progress/warning lines across workers. */
std::mutex logMutex;

} // namespace

std::string
checkpointSlug(const std::string &name)
{
    std::string slug;
    for (const char c : name) {
        slug += std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)))
                    : '_';
    }
    return slug.substr(0, 64);
}

std::string
checkpointPath(const std::string &dir, const std::string &name)
{
    return dir + "/" + checkpointSlug(name) + ".ckpt";
}

void
ExperimentRunner::applyEnvOverrides(WorkloadParams &params)
{
    RunOptions::fromEnv().applyTo(params);
}

RunResult
ExperimentRunner::runMachine(const MachineConfig &cfg,
                             obs::Observability *o,
                             ExecMode spec_warmup) const
{
    const ExecMode warmup_mode =
        options_.effectiveWarmupMode(spec_warmup);
    const ExecMode exec_mode = options_.effectiveExecMode();
    // Host wall time is only taken in self-profiling runs, so default
    // runs carry no nondeterministic bytes anywhere downstream.
    const bool prof_on = prof::enabled();
    const auto host_start = prof_on
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    std::unique_ptr<Machine> machine;
    if (!options_.fromCkptDir.empty()) {
        const std::string path =
            checkpointPath(options_.fromCkptDir, cfg.name);
        machine = Machine::fromCheckpoint(path, warmup_mode);
        // Measuring a warm image under different knobs would silently
        // compare incomparable runs; insist on an exact config match.
        if (ckpt::configBytes(machine->config()) !=
            ckpt::configBytes(cfg)) {
            isim_fatal("checkpoint '%s' was taken with a different "
                       "configuration than '%s' requests (txns/seed/"
                       "geometry must match exactly)",
                       path.c_str(), cfg.name.c_str());
        }
    } else {
        machine = std::make_unique<Machine>(cfg);
    }
    if (o != nullptr)
        machine->attachObservability(o);
    if (!machine->isWarm()) {
        machine->runWarmup(warmup_mode);
        if (!options_.saveCkptDir.empty()) {
            std::filesystem::create_directories(options_.saveCkptDir);
            machine->saveCheckpoint(
                checkpointPath(options_.saveCkptDir, cfg.name));
        }
    }
    RunResult r;
    if (options_.sample.enabled()) {
        sample::SampleController controller(*machine, options_.sample);
        r = controller.run(exec_mode);
    } else {
        r = machine->runMeasurement(exec_mode);
    }
    // Stamp the cell's content-address identity (META block of the
    // stats manifest; the cache key isim-campaign stores results
    // under). Computed from the *requested* config, which runMachine's
    // restore path has already proven byte-equal to the image's.
    const std::vector<std::uint8_t> cb = ckpt::configBytes(cfg);
    r.resultKey = stats::resultKey(cb, cfg.workload.seed,
                                   options_.sample);
    r.configDigest = stats::configDigest(cb);
    r.seed = cfg.workload.seed;
    if (prof_on) {
        r.hostWallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - host_start)
                .count();
    }
    return r;
}

RunResult
ExperimentRunner::runOne(const MachineConfig &config,
                         ExecMode spec_warmup) const
{
    MachineConfig cfg = config;
    options_.applyTo(cfg.workload);
    if (options_.verbose) {
        const std::lock_guard<std::mutex> lock(logMutex);
        isim_inform("running %s ...", cfg.name.c_str());
    }
    RunResult r = runMachine(cfg, nullptr, spec_warmup);
    if (!r.dbConsistent) {
        const std::lock_guard<std::mutex> lock(logMutex);
        isim_warn("%s: TPC-B consistency check FAILED", cfg.name.c_str());
    }
    return r;
}

RunResult
ExperimentRunner::runObserved(const MachineConfig &config,
                              obs::Observability &o,
                              ExecMode spec_warmup) const
{
    MachineConfig cfg = config;
    options_.applyTo(cfg.workload);
    if (options_.verbose) {
        const std::lock_guard<std::mutex> lock(logMutex);
        isim_inform("running %s (observed) ...", cfg.name.c_str());
    }
    RunResult r = runMachine(cfg, &o, spec_warmup);
    if (!r.dbConsistent) {
        const std::lock_guard<std::mutex> lock(logMutex);
        isim_warn("%s: TPC-B consistency check FAILED", cfg.name.c_str());
    }
    const std::string written = o.writeOutputs();
    if (options_.verbose && !written.empty()) {
        const std::lock_guard<std::mutex> lock(logMutex);
        isim_inform("%s: wrote %s", cfg.name.c_str(), written.c_str());
    }
    return r;
}

RunResult
ExperimentRunner::runBar(const FigureSpec &spec, std::size_t index,
                         std::size_t observed_index) const
{
    if (index == observed_index) {
        obs::ObsConfig cfg = options_.obs;
        if (options_.statsEpochTicks > 0) {
            cfg.sampleEpochs = true;
            // The timeline CSV (when requested) keeps its own grid;
            // the manifest's epoch rows then share it.
            if (!cfg.wantsTimeline())
                cfg.epochTicks = options_.statsEpochTicks;
        }
        obs::Observability o(cfg);
        return runObserved(spec.bars[index].config, o, spec.warmupMode);
    }
    if (options_.statsEpochTicks > 0) {
        // Sampler-only bundle: no event tracing, no output files —
        // just the epoch rows the stats manifest embeds. Every bar
        // gets one, unlike the single observed bar above.
        obs::ObsConfig cfg;
        cfg.epochTicks = options_.statsEpochTicks;
        cfg.sampleEpochs = true;
        obs::Observability o(cfg);
        return runObserved(spec.bars[index].config, o, spec.warmupMode);
    }
    return runOne(spec.bars[index].config, spec.warmupMode);
}

FigureResult
ExperimentRunner::run(const FigureSpec &spec) const
{
    FigureResult result;
    result.spec = spec;
    const std::size_t n = spec.bars.size();
    result.runs.resize(n);

    const std::size_t observed =
        (options_.obs.any() && n)
            ? std::min(options_.obs.traceBar, n - 1)
            : n; // no bar is observed
    const unsigned jobs = options_.effectiveJobs(n);

    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            result.runs[i] = runBar(spec, i, observed);
        return result;
    }

    // Worker pool over a shared bar counter. Workers write disjoint
    // slots of `runs` and disjoint slots of `errors`, so results come
    // back in spec order no matter which worker finishes when; the
    // first failing bar's exception (in spec order) is rethrown after
    // the join so no thread is left running.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i;
                 (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
                try {
                    result.runs[i] = runBar(spec, i, observed);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return result;
}

FigureResult
ExperimentRunner::run(const SweepSpec &sweep) const
{
    return run(sweep.expand());
}

} // namespace isim
