/**
 * @file
 * The figure-running driver shared by the bench binaries and the
 * isim-fig multiplexer: run a spec (or every registry entry matching
 * an id) under a RunOptions, print the paper-style report, and write
 * the figure JSON when requested.
 */

#ifndef ISIM_CORE_DRIVER_HH
#define ISIM_CORE_DRIVER_HH

#include <string>

#include "src/config/run_options.hh"
#include "src/core/experiment.hh"

namespace isim {

/**
 * Run one figure and print its report to stdout; writes
 * `<options.jsonDir>/<slug(id_title)>.json` when a JSON directory is
 * configured. Returns a process exit status (0 on success).
 */
int runFigureAndPrint(const FigureSpec &spec, const RunOptions &options);

/**
 * Resolve `id` in the FigureRegistry (exact, then prefix — so
 * "fig10" runs fig10-uni and fig10-mp) and run every match in
 * catalog order. fatal() when nothing matches.
 */
int runRegisteredFigures(const std::string &id,
                         const RunOptions &options);

/** The JSON file stem used for a figure ("figure_5_oltp_with_..."). */
std::string figureJsonStem(const FigureSpec &spec);

} // namespace isim

#endif // ISIM_CORE_DRIVER_HH
