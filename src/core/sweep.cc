/**
 * @file
 * SweepSpec expansion.
 */

#include "src/core/sweep.hh"

#include "src/base/logging.hh"

namespace isim {

std::size_t
SweepSpec::points() const
{
    std::size_t total = 1;
    for (const SweepAxis &axis : axes) {
        isim_assert(!axis.points.empty(),
                    "sweep axis '%s' has no points", axis.name.c_str());
        total *= axis.points.size();
    }
    return total;
}

FigureSpec
SweepSpec::expand() const
{
    FigureSpec spec;
    spec.id = id;
    spec.title = title;
    spec.normalizeTo = normalizeTo;
    spec.multiprocessor = multiprocessor;

    const std::size_t total = points();
    isim_assert(normalizeTo < total,
                "sweep '%s': normalizeTo %zu out of %zu points",
                id.c_str(), normalizeTo, total);
    spec.bars.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        MachineConfig cfg = base;
        std::string name;
        std::size_t rem = i;
        for (const SweepAxis &axis : axes) {
            const SweepPoint &point =
                axis.points[rem % axis.points.size()];
            rem /= axis.points.size();
            if (point.apply)
                point.apply(cfg);
            if (!point.label.empty()) {
                if (!name.empty())
                    name += ' ';
                name += point.label;
            }
        }
        if (!name.empty())
            cfg.name = name;
        FigureBar bar;
        bar.config = cfg;
        spec.bars.push_back(bar);
    }
    return spec;
}

} // namespace isim
