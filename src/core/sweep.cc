/**
 * @file
 * SweepSpec expansion.
 */

#include "src/core/sweep.hh"

#include <set>

#include "src/base/logging.hh"

namespace isim {

std::size_t
SweepSpec::points() const
{
    std::size_t total = 1;
    for (const SweepAxis &axis : axes) {
        // A hard error, not an assert: an empty axis in a
        // campaign-supplied sweep would silently expand to zero bars
        // and the whole cross-product would vanish.
        if (axis.points.empty()) {
            isim_fatal("sweep '%s': axis '%s' has no points",
                       id.c_str(), axis.name.c_str());
        }
        total *= axis.points.size();
    }
    return total;
}

FigureSpec
SweepSpec::expand() const
{
    FigureSpec spec;
    spec.id = id;
    spec.title = title;
    spec.normalizeTo = normalizeTo;
    spec.multiprocessor = multiprocessor;

    const std::size_t total = points();
    isim_assert(normalizeTo < total,
                "sweep '%s': normalizeTo %zu out of %zu points",
                id.c_str(), normalizeTo, total);
    spec.bars.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        MachineConfig cfg = base;
        std::string name;
        std::size_t rem = i;
        for (const SweepAxis &axis : axes) {
            const SweepPoint &point =
                axis.points[rem % axis.points.size()];
            rem /= axis.points.size();
            if (point.apply)
                point.apply(cfg);
            if (!point.label.empty()) {
                if (!name.empty())
                    name += ' ';
                name += point.label;
            }
        }
        if (!name.empty())
            cfg.name = name;
        FigureBar bar;
        bar.config = cfg;
        spec.bars.push_back(bar);
    }
    // Duplicate expanded names would collide in stats manifests and
    // in the campaign result cache (bars are addressed by name within
    // a figure); reject the cross-product outright.
    std::set<std::string> seen;
    for (const FigureBar &bar : spec.bars) {
        if (!seen.insert(bar.config.name).second) {
            isim_fatal("sweep '%s': duplicate bar name '%s' in "
                       "cross-product (axis labels must be unique "
                       "per combination)",
                       id.c_str(), bar.config.name.c_str());
        }
    }
    return spec;
}

} // namespace isim
