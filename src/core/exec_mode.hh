/**
 * @file
 * ExecMode: which per-reference execution path a simulation phase
 * uses. The split mirrors gem5's AtomicSimpleCPU/TimingSimpleCPU
 * pair: `Timing` is the full model (per-model CPU timing, MC queue
 * contention, NoC leg accounting, event tracing); `Atomic` is the
 * fast-functional path — every cache-array, victim-buffer, RAC and
 * directory state transition is applied immediately with correct
 * miss classification, but with table latencies charged in-order,
 * zero timing events, no contention model and no NoC leg timing.
 * docs/EXECMODE.md documents the semantics and the exact equivalence
 * guarantees between the two modes.
 */

#ifndef ISIM_CORE_EXEC_MODE_HH
#define ISIM_CORE_EXEC_MODE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace isim {

/** Per-phase execution path. */
enum class ExecMode : std::uint8_t {
    Timing = 0, //!< full timing model (the default everywhere)
    Atomic = 1, //!< fast-functional: state + classification only
};

inline const char *
execModeName(ExecMode mode)
{
    return mode == ExecMode::Atomic ? "atomic" : "timing";
}

/** Parse "timing" / "atomic"; nullopt on anything else. */
inline std::optional<ExecMode>
execModeFromName(const std::string &name)
{
    if (name == "timing")
        return ExecMode::Timing;
    if (name == "atomic")
        return ExecMode::Atomic;
    return std::nullopt;
}

} // namespace isim

#endif // ISIM_CORE_EXEC_MODE_HH
