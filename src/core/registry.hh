/**
 * @file
 * FigureRegistry: the central catalog of every runnable figure,
 * ablation, and extension experiment, keyed by a short kebab-case id
 * ("fig10-uni", "ablation-victim", "ext-cmp"). Adding an experiment
 * means registering one factory here — no new bench binary or CMake
 * target — and it becomes runnable via `isim-fig run <id>` and
 * enumerable via `isim-fig list`.
 */

#ifndef ISIM_CORE_REGISTRY_HH
#define ISIM_CORE_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "src/core/experiment.hh"

namespace isim {

/** One catalog entry. */
struct FigureEntry
{
    std::string id;          //!< unique kebab-case key, e.g. "fig05"
    std::string description; //!< one line for `isim-fig list`
    /** Optional commentary printed after the figure's report. */
    std::string note;
    std::function<FigureSpec()> make;
};

/** Immutable catalog built once at first use. */
class FigureRegistry
{
  public:
    static const FigureRegistry &instance();

    const std::vector<FigureEntry> &entries() const { return entries_; }

    /** Exact-id lookup; nullptr when unknown. */
    const FigureEntry *find(const std::string &id) const;

    /**
     * Exact match if one exists, otherwise every entry whose id
     * starts with `id` (so "fig10" resolves to fig10-uni + fig10-mp).
     * Empty when nothing matches.
     */
    std::vector<const FigureEntry *>
    resolve(const std::string &id) const;

    FigureRegistry(const FigureRegistry &) = delete;
    FigureRegistry &operator=(const FigureRegistry &) = delete;

  private:
    FigureRegistry();
    std::vector<FigureEntry> entries_;
};

} // namespace isim

#endif // ISIM_CORE_REGISTRY_HH
