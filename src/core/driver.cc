/**
 * @file
 * Figure-running driver implementation.
 */

#include "src/core/driver.hh"

#include <cctype>
#include <fstream>
#include <iostream>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/core/registry.hh"
#include "src/core/report.hh"
#include "src/prof/profiler.hh"

namespace isim {

namespace {

void
writeTextFile(const std::string &path, const std::string &content,
              const char *what)
{
    std::ofstream out(path);
    if (!out)
        isim_fatal("cannot write %s: %s", what, path.c_str());
    out << content;
    if (!out)
        isim_fatal("write of %s failed: %s", what, path.c_str());
}

} // namespace

std::string
figureJsonStem(const FigureSpec &spec)
{
    std::string name;
    for (const char c : spec.id + "_" + spec.title) {
        name += std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)))
                    : '_';
    }
    return name.substr(0, 64);
}

int
runFigureAndPrint(const FigureSpec &spec, const RunOptions &options)
{
    options.applyGlobal();
    const ExperimentRunner runner(options);
    const FigureResult result = runner.run(spec);
    {
        ISIM_PROF_SCOPE("report");
        // The report is the CLI's product output, not a diagnostic.
        // isim-lint: allow(logging): figure reports are the CLI's stdout contract
        printFigureReport(std::cout, result);
        if (!options.jsonDir.empty()) {
            const std::string path =
                options.jsonDir + "/" + figureJsonStem(spec) + ".json";
            writeTextFile(path, figureToJson(result), "figure JSON");
            isim_inform("json written to %s", path.c_str());
        }
        if (!options.statsOut.empty() || !options.jsonDir.empty()) {
            const std::string path =
                !options.statsOut.empty()
                    ? options.statsOut
                    : options.jsonDir + "/" + figureJsonStem(spec) +
                          ".stats.json";
            const std::string manifest = figureStatsJson(result);
            // The manifest is a machine-interface contract (isim-stat,
            // CI regression diffs); prove it parses before shipping it.
            std::string err;
            if (!jsonValidate(manifest, &err))
                isim_panic("stats manifest does not validate: %s",
                           err.c_str());
            writeTextFile(path, manifest, "stats manifest");
            isim_inform("stats written to %s", path.c_str());
        }
    }
    if (!options.profOut.empty()) {
        // Emitted after the report scope closes so its cost is in the
        // profile. Always a valid document: an "enabled": false stub
        // when the build lacks -DISIM_PROF=ON (see docs/PROFILING.md).
        writeTextFile(options.profOut, prof::globalProfJson(),
                      "host profile");
        isim_inform("profile written to %s", options.profOut.c_str());
    }
    return 0;
}

int
runRegisteredFigures(const std::string &id, const RunOptions &options)
{
    const std::vector<const FigureEntry *> entries =
        FigureRegistry::instance().resolve(id);
    if (entries.empty())
        isim_fatal("unknown figure id '%s' (try `isim-fig list`)",
                   id.c_str());
    for (const FigureEntry *entry : entries) {
        const int rc = runFigureAndPrint(entry->make(), options);
        if (rc != 0)
            return rc;
        if (!entry->note.empty())
            // isim-lint: allow(logging): figure notes accompany the report on stdout
            std::cout << entry->note;
    }
    return 0;
}

} // namespace isim
