/**
 * @file
 * SweepSpec: a figure defined as a cross-product of configuration
 * axes instead of an explicit bar list. Each axis contributes a set
 * of points (label + mutation of MachineConfig); expanding the sweep
 * yields an ordinary FigureSpec whose bars enumerate the full
 * cross-product, so the parallel experiment engine can run arbitrary
 * design-space sweeps (Piranha-style CMP exploration, cache
 * geometry surfaces) exactly like the paper's figures.
 */

#ifndef ISIM_CORE_SWEEP_HH
#define ISIM_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "src/core/experiment.hh"

namespace isim {

/** One point of one axis: a label and a config mutation. */
struct SweepPoint
{
    /** Appears in the bar name ("" = contribute nothing). */
    std::string label;
    /** Applied to a copy of the base config; may be empty. */
    std::function<void(MachineConfig &)> apply;
};

/** One swept dimension. Must have at least one point. */
struct SweepAxis
{
    std::string name; //!< e.g. "assoc", "mc-occupancy"
    std::vector<SweepPoint> points;
};

/**
 * A cross-product experiment: every combination of one point per
 * axis, each applied (in axis order) to a copy of `base`.
 */
struct SweepSpec
{
    std::string id;
    std::string title;
    MachineConfig base;
    std::vector<SweepAxis> axes;
    std::size_t normalizeTo = 0;
    bool multiprocessor = false;

    /**
     * Total number of cross-product points (1 when no axes).
     * Fatal on an axis with no points — that would silently expand
     * to an empty figure.
     */
    std::size_t points() const;

    /**
     * Expand to a FigureSpec. The *first* axis varies fastest, so
     * `axes = {A, B}` yields bars (a0,b0), (a1,b0), ..., (a0,b1), ...
     * Bar names are the non-empty point labels joined with spaces;
     * when every chosen label is empty the config name set by the
     * apply functions (or the base's) is kept. Fatal when two
     * expanded bars end up with the same name (they would collide in
     * manifests and in the campaign result cache).
     */
    FigureSpec expand() const;
};

} // namespace isim

#endif // ISIM_CORE_SWEEP_HH
