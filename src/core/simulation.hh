/**
 * @file
 * The simulation loop: a conservative min-clock scheduler over the
 * per-CPU local times. The CPU whose clock is furthest behind always
 * steps next, so shared memory-system state is mutated in (approximate)
 * global time order — the sequentially consistent interleaving the
 * paper assumes. The loop also drives the OS: process dispatch,
 * context-switch kernel paths, idle accounting, quantum preemption.
 */

#ifndef ISIM_CORE_SIMULATION_HH
#define ISIM_CORE_SIMULATION_HH

#include <deque>
#include <memory>
#include <vector>

#include "src/ckpt/fwd.hh"
#include "src/core/exec_mode.hh"
#include "src/cpu/core.hh"
#include "src/oltp/workload.hh"
#include "src/os/kernel.hh"
#include "src/os/scheduler.hh"

namespace isim {

class TraceWriter;

namespace obs {
class Observability;
}

/** Options of a simulation run. */
struct SimOptions
{
    Tick quantum = 2000000; //!< preemption quantum (0 = none)
    /**
     * Which core model populates the CPU vector. The loop uses this to
     * dispatch the per-reference consume/drain calls through the final
     * concrete type instead of the virtual interface — both models are
     * `final`, so the compiler emits direct (inlinable) calls on the
     * hottest path in the simulator.
     */
    CpuModel model = CpuModel::InOrder;
    /** Optional trace capture of every consumed reference. */
    TraceWriter *trace = nullptr;
    /** Hard step limit as a runaway backstop (0 = none). */
    std::uint64_t maxSteps = 0;
    /** Observability bundle the loop drives (may be nullptr). */
    obs::Observability *obs = nullptr;
};

/**
 * The loop's own mutable state, detached from the loop object so a
 * checkpoint restore can carry it before the Simulation exists (the
 * loop binds its tracer at construction, which must happen after
 * observability is attached).
 */
struct SimState
{
    struct Cpu
    {
        Tick now = 0;
        Tick quantumStart = 0;
        std::deque<MemRef> injected; //!< kernel switch path to run
    };
    std::vector<Cpu> cpus;
    std::uint64_t steps = 0;

    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);
};

/** The loop itself. */
class Simulation
{
  public:
    Simulation(Scheduler &sched, KernelModel &kernel, OltpEngine &engine,
               std::vector<std::unique_ptr<CpuCore>> &cpus,
               const SimOptions &options);

    /**
     * Run until the engine's measured transaction count completes.
     * ExecMode::Atomic takes the fast-functional path: cache, victim
     * buffer, RAC and directory state advance reference by reference
     * with correct miss classification, but no timing events are
     * scheduled (no MC queue contention, no NoC leg accounting, no
     * observability timeline).
     */
    void runUntilMeasurementDone(ExecMode mode = ExecMode::Timing);

    /** Run until the warm-up transaction count completes. */
    void runUntilWarmupDone(ExecMode mode = ExecMode::Timing);

    /**
     * Run until the engine's total committed count reaches `target`
     * (no-op when already there). The generalized form of the two
     * entry points above; the sampled-simulation controller uses it to
     * carve the measurement phase into fast-forward and measurement
     * windows at arbitrary committed-count boundaries.
     */
    void runUntilCommitted(std::uint64_t target,
                           ExecMode mode = ExecMode::Timing);

    /** Local time of a CPU. */
    Tick cpuNow(NodeId cpu) const { return state_[cpu].now; }

    /** Largest local CPU time (the machine's wall clock). */
    Tick wallTime() const;

    std::uint64_t steps() const { return steps_; }

    /**
     * Loop iterations taken by the timing-mode event loop. Stays zero
     * across a pure-atomic phase — the hard "atomic schedules nothing"
     * guarantee the exec-mode tests pin down.
     */
    std::uint64_t timingEvents() const { return timingEvents_; }

    /** Snapshot the loop state for a checkpoint. */
    SimState captureState() const;
    /** Adopt a previously captured (or deserialized) loop state. */
    void restoreState(const SimState &state);

  private:
    using CpuState = SimState::Cpu;

    /** True if the CPU can make progress right now. */
    bool steppable(NodeId cpu) const;
    /**
     * Time of the CPU's next unit of work: its clock when something
     * is runnable, else its next timed wake. The loop always steps
     * the CPU with the smallest event time, so an idle CPU's clock
     * only jumps to a far-future wake once everyone else has passed
     * it — preserving global event order and honest wall time.
     */
    Tick nextEventTime(NodeId cpu) const;
    /** Execute one unit of work on the CPU. */
    void stepCpu(NodeId cpu);
    /** Timing-mode loop until the committed count reaches `target`. */
    void runUntil(std::uint64_t target);

    /** Devirtualized per-reference dispatch (see SimOptions::model). */
    Tick consumeOn(CpuCore &core, const MemRef &ref, Tick now);
    Tick drainOn(CpuCore &core, Tick now);

    /**
     * Atomic-mode loop: the same conservative min-clock schedule, but
     * each pick bursts the chosen CPU until it stops being the global
     * minimum (tracked against the runner-up's event time) instead of
     * re-scanning every CPU per reference. References are consumed
     * through CpuCore::consumeAtomic.
     */
    void runUntilAtomic(std::uint64_t target);
    /**
     * Burst units of work on `cpu` while it stays ahead of the
     * runner-up (`horizon`, with `horizon_cpu` breaking ties by the
     * scan's lowest-index-wins rule) and the committed count stays
     * below `target`. Returns to the caller's rescan whenever
     * Process::step() runs, since a refill may wake processes on
     * OTHER CPUs and stale the horizon.
     */
    void stepCpuAtomic(NodeId cpu, Tick horizon, NodeId horizon_cpu,
                       std::uint64_t target);

    Scheduler &sched_;
    KernelModel &kernel_;
    OltpEngine &engine_;
    std::vector<std::unique_ptr<CpuCore>> &cpus_;
    SimOptions options_;
    obs::Tracer *tracer_ = nullptr; //!< from options_.obs, may be null
    std::vector<CpuState> state_;
    std::uint64_t steps_ = 0;
    std::uint64_t timingEvents_ = 0;
};

} // namespace isim

#endif // ISIM_CORE_SIMULATION_HH
