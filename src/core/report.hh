/**
 * @file
 * Report formatting: renders a FigureResult the way the paper draws
 * it — a normalized execution-time breakdown table and a normalized
 * L2-miss breakdown table — with the paper's published values (where
 * known) alongside for comparison.
 */

#ifndef ISIM_CORE_REPORT_HH
#define ISIM_CORE_REPORT_HH

#include <iosfwd>
#include <string>

#include "src/core/experiment.hh"
#include "src/stats/manifest.hh"
#include "src/stats/table.hh"

namespace isim {

/** Normalized execution-time table (CPU / L2Hit / LocStall / RemStall). */
Table executionTable(const FigureResult &result);

/** Normalized L2 miss table (I/D x local/remote-clean/remote-dirty). */
Table missTable(const FigureResult &result);

/** Absolute run metrics (instructions, TPS, kernel share, RAC rate). */
Table detailTable(const FigureResult &result);

/** Print the full report for one figure. */
void printFigureReport(std::ostream &os, const FigureResult &result);

/** One-line CSV-ish summary used by EXPERIMENTS.md generation. */
std::string summaryLine(const FigureResult &result);

/**
 * Machine-readable JSON for one figure: per bar the configuration
 * label, normalized and absolute execution time with its breakdown,
 * the miss mix, and the paper's published values where known.
 */
std::string figureToJson(const FigureResult &result);

/**
 * The schema-versioned stats manifest for one figure: every registered
 * stat of every bar (plus per-epoch rows when sampled), written next
 * to the figure JSON as `<stem>.stats.json`. See stats/manifest.hh for
 * the document layout.
 */
std::string figureStatsJson(const FigureResult &result);

} // namespace isim

#endif // ISIM_CORE_REPORT_HH
