/**
 * @file
 * Machine assembly: one object that wires the full system — virtual
 * memory, kernel model, OLTP engine, scheduler, coherent memory
 * system, and one CPU core per node — from a single MachineConfig, and
 * runs the workload with the paper's warm-up-then-measure protocol.
 */

#ifndef ISIM_CORE_MACHINE_HH
#define ISIM_CORE_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/fwd.hh"
#include "src/coherence/protocol.hh"
#include "src/core/exec_mode.hh"
#include "src/cpu/core.hh"
#include "src/cpu/ooo.hh"
#include "src/obs/sampler.hh"
#include "src/oltp/workload.hh"
#include "src/sample/report.hh"
#include "src/os/kernel.hh"
#include "src/os/scheduler.hh"
#include "src/os/vm.hh"
#include "src/stats/registry.hh"
#include "src/timing/latency_config.hh"

namespace isim {

class Simulation;
struct SimState;
class TraceWriter;

namespace obs {
class Observability;
}

namespace sample {
class SampleController;
}

/** Full configuration of one simulated machine + workload. */
struct MachineConfig
{
    std::string name = "unnamed";

    unsigned numCpus = 1; //!< total CPU cores
    /**
     * Cores per chip (CMP extension; paper Section 8 points to chip
     * multiprocessing as the step after integration). numCpus must be
     * divisible by it; cores on a chip share the L2 and node memory.
     */
    unsigned coresPerNode = 1;
    CpuModel cpuModel = CpuModel::InOrder;
    OooParams oooParams{};

    unsigned numNodes() const { return numCpus / coresPerNode; }

    IntegrationLevel level = IntegrationLevel::Base;
    L2Impl l2Impl = L2Impl::OffchipDirect;
    CacheGeometry l2{8 * mib, 1, 64};
    bool rac = false;
    CacheGeometry racGeom{8 * mib, 8, 64};
    /** L2 victim-buffer entries (0 = none; paper Figure 1 block). */
    unsigned victimBufferEntries = 0;
    /** Sequential L2 prefetch degree (0 = none). */
    unsigned prefetchDegree = 0;
    /** Per-miss MC occupancy in cycles (0 = uncontended, default). */
    Cycles mcOccupancy = 0;
    bool replicateCode = false;

    unsigned nodeShift = 31; //!< 2 GB of memory per node
    /** OS page colours (1 = random placement, the paper's baseline). */
    unsigned pageColors = 1;
    WorkloadParams workload{};

    /** The latency table this configuration charges (Figure 3). */
    LatencyTable latencies() const
    {
        return figure3Latencies(level, l2Impl);
    }

    /** Short label, e.g. "Base 8M1w". */
    std::string label() const;
};

/** Aggregated outcome of one measured run. */
struct RunResult
{
    std::string name;
    CpuStats cpu;             //!< summed over CPUs (measurement window)
    NodeProtocolStats misses; //!< summed over nodes
    RacCounters rac;
    std::uint64_t transactions = 0;
    Tick wallTime = 0; //!< elapsed simulated time of the window
    bool dbConsistent = false;

    // Transaction commit latency over the window (microseconds).
    // Quantiles are NaN when unresolvable (no samples, or the mass
    // sits in the histogram's overflow bucket).
    double txnLatMeanUs = 0.0;
    double txnLatP50Us = 0.0;
    double txnLatP95Us = 0.0;
    double txnLatP99Us = 0.0;

    /** Full registry snapshot (every named stat, sorted by name). */
    stats::Snapshot stats;
    /**
     * Sampled-measurement record (docs/SAMPLING.md): the resolved
     * schedule and a sem/ci95 per stat. `sampling.enabled` is false
     * on exact runs, and manifests only emit the block when set — an
     * exact run's manifest is byte-identical to pre-sampling ones.
     */
    sample::SampleReport sampling;
    /** Per-epoch counter deltas; filled only with --stats-epoch. */
    std::vector<obs::EpochRow> epochs;

    // Execution modes of the run (docs/EXECMODE.md): the mode that
    // produced the warm state (a restored machine reports its image's
    // producing mode) and the measurement mode. Manifests only echo
    // them when they differ from Timing, so pure-timing manifests are
    // byte-identical to pre-ExecMode ones.
    ExecMode warmupMode = ExecMode::Timing;
    ExecMode execMode = ExecMode::Timing;

    // Content-address identity of this run's (config, seed) cell,
    // filled by ExperimentRunner::runMachine and echoed into the
    // stats manifest's META block (stats::resultKey semantics). Empty
    // for runs driven outside the runner (unit tests on raw Machine).
    std::string resultKey;
    std::string configDigest;
    std::uint64_t seed = 0;

    // Host wall-clock the bar took, in ms (< 0 = not measured).
    // Filled by ExperimentRunner::runMachine only when the
    // self-profiler is enabled: host time is nondeterministic, so it
    // must never leak into default manifests (docs/PROFILING.md).
    double hostWallMs = -1.0;

    /** The figures' y-axis: total non-idle execution time. */
    Tick execTime() const { return cpu.nonIdle(); }
    double tps() const
    {
        return wallTime
                   ? static_cast<double>(transactions) * 1e9 / wallTime
                   : 0.0;
    }
};

/** The assembled machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine(); //!< out of line: owns a Simulation by unique_ptr

    const MachineConfig &config() const { return config_; }

    /**
     * Run warm-up then the measured transaction count; returns the
     * aggregated result for the measurement window. Each phase takes
     * an explicit execution mode (docs/EXECMODE.md): warm-up is
     * usually ExecMode::Atomic (fast-functional state warming, no
     * timing events), measurement is usually ExecMode::Timing (the
     * paper's cycle accounting). When `trace` is given, every consumed
     * reference (warm-up included) is captured. On a machine restored
     * from a checkpoint the warm-up phase is skipped — the image
     * already contains the warm state.
     */
    RunResult run(ExecMode warmup_mode,
                  ExecMode exec_mode = ExecMode::Timing,
                  TraceWriter *trace = nullptr);

    /**
     * The two phases of run(), exposed separately so a checkpoint can
     * be taken between them (SimOS-style: pay the warm-up once, seed
     * many measurement runs from the image). runWarmup() runs the
     * warm-up transactions in the given mode and rebases the
     * statistics; it must be called at most once, and not on a
     * restored machine.
     */
    void runWarmup(ExecMode mode, TraceWriter *trace = nullptr);
    RunResult runMeasurement(ExecMode mode = ExecMode::Timing,
                             TraceWriter *trace = nullptr);

    // Pre-ExecMode entry points. Kept one release so out-of-tree
    // drivers keep compiling; in-tree callers must pass a mode (the CI
    // warning gate rejects uses of these).
    [[deprecated("pass an explicit ExecMode (docs/EXECMODE.md)")]]
    RunResult run(TraceWriter *trace = nullptr);
    [[deprecated("pass an explicit ExecMode (docs/EXECMODE.md)")]]
    void runWarmup(TraceWriter *trace = nullptr);
    [[deprecated("use isWarm()")]]
    bool warm() const { return warmupRan_; }

    /** Whether the warm-up has run (or was restored from an image). */
    bool isWarm() const { return warmupRan_; }

    /**
     * The mode the warm-up phase executed in (Timing until a warm-up
     * runs; restored machines report the producing image's mode).
     */
    ExecMode warmupMode() const { return warmupMode_; }

    /**
     * Timing-loop iterations taken so far. Stays zero across atomic
     * phases — the "atomic schedules no timing events" guarantee.
     */
    std::uint64_t timingEvents() const;

    /** Simulated time at the end of warm-up (0 before it). */
    Tick warmupEndTime() const { return warmEnd_; }

    /** Hard step-count backstop for the loop (0 = none). */
    void setMaxSteps(std::uint64_t max_steps) { maxSteps_ = max_steps; }

    // ---- Checkpointing (implemented in src/ckpt/checkpoint.cc) ----

    /**
     * Serialize the machine's full warm state (configuration echo +
     * every stateful component + the loop clocks) into the versioned
     * checkpoint image format documented in docs/CHECKPOINT.md.
     */
    std::vector<std::uint8_t> checkpointBytes() const;
    /** checkpointBytes() to a file; fatal on I/O error. */
    void saveCheckpoint(const std::string &path) const;
    /** FNV-1a 64 digest of checkpointBytes() (round-trip tests). */
    std::uint64_t stateDigest() const;

    /**
     * Rebuild a machine from a checkpoint image. The returned machine
     * is warm: run() / runMeasurement() continue from the image. The
     * latency-override variant re-resolves the latency table for a
     * different integration level / L2 implementation — cache
     * *geometry* still has to match the image, only latencies change.
     *
     * `expected_warmup` guards mode provenance: the image records the
     * ExecMode that produced it, and restoring an atomic-warmed image
     * into a run expecting a timing-warmed one (or vice versa) is
     * fatal unless the caller asked for that mode explicitly
     * (--warmup-mode atomic). Silent mode mixing would blend two
     * different warm-state definitions into one result series.
     */
    static std::unique_ptr<Machine>
    fromCheckpointBytes(const std::vector<std::uint8_t> &bytes,
                        ExecMode expected_warmup = ExecMode::Timing);
    static std::unique_ptr<Machine>
    fromCheckpoint(const std::string &path,
                   ExecMode expected_warmup = ExecMode::Timing);
    static std::unique_ptr<Machine>
    fromCheckpoint(const std::string &path, IntegrationLevel level,
                   L2Impl l2_impl,
                   ExecMode expected_warmup = ExecMode::Timing);

    // Component access (tests, examples).
    VirtualMemory &vm() { return *vm_; }
    KernelModel &kernel() { return *kernel_; }
    OltpEngine &engine() { return *engine_; }
    Scheduler &sched() { return *sched_; }
    MemorySystem &memSys() { return *memSys_; }
    CpuCore &cpu(NodeId node) { return *cpus_[node]; }

    /**
     * Reset all statistics (cache/directory contents are kept). Every
     * component resets through its hook on the registry, so a stat
     * cannot be registered without also being covered by the warm-up
     * boundary.
     */
    void resetStats();

    /** Collect current aggregated statistics. */
    RunResult snapshot() const;

    /** The machine's metrics registry (every counter, by name). */
    stats::Registry &statsRegistry() { return registry_; }
    const stats::Registry &statsRegistry() const { return registry_; }

    /**
     * Attach (or with nullptr, detach) an observability bundle: wires
     * the tracer into the memory system and the engine and installs
     * the counter source the timeline sampler snapshots. The bundle
     * must outlive the machine's run() calls.
     */
    void attachObservability(obs::Observability *o);

  private:
    // The sampled-simulation controller drives the loop through
    // window-grained runUntilCommitted calls and per-window resets;
    // it needs the sim/engine/registry plumbing but nothing of it
    // belongs in the public API.
    friend class sample::SampleController;

    /** Register every component's stats (called once, from the ctor). */
    void buildRegistry();

    /**
     * Create the simulation loop if it does not exist yet, adopting
     * any pending restored loop state. Deferred to the first run call
     * so a restored machine can still attachObservability() first
     * (the loop binds its tracer at construction).
     */
    void ensureSim(TraceWriter *trace);

    /** Restore component + loop state from an image (checkpoint.cc). */
    void restoreFromImage(ckpt::Deserializer &d, ExecMode expected_warmup);

    MachineConfig config_;
    stats::Registry registry_;
    std::unique_ptr<VirtualMemory> vm_;
    std::unique_ptr<KernelModel> kernel_;
    std::unique_ptr<OltpEngine> engine_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<MemorySystem> memSys_;
    std::vector<std::unique_ptr<CpuCore>> cpus_;
    obs::Observability *obs_ = nullptr;

    std::unique_ptr<Simulation> sim_; //!< persists across run phases
    /** Loop state restored from an image before sim_ exists. */
    std::unique_ptr<SimState> pendingSim_;
    Tick warmEnd_ = 0;      //!< wall time at the warm-up boundary
    bool warmupRan_ = false;
    ExecMode warmupMode_ = ExecMode::Timing;
    /**
     * Whether obs_->beginRun() has been issued. A timing warm-up opens
     * the observability window at time 0; atomic warm-ups and restored
     * machines defer it to the warm boundary (runMeasurement).
     */
    bool obsBegun_ = false;
    std::uint64_t maxSteps_ = 0;
};

} // namespace isim

#endif // ISIM_CORE_MACHINE_HH
