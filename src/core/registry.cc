/**
 * @file
 * The figure/ablation/extension catalog. The paper figures delegate
 * to src/core/figures.cc; the ablations and extensions (formerly
 * built inline by their bench binaries) are assembled here, the
 * cross-product-shaped ones via SweepSpec.
 */

#include "src/core/registry.hh"

#include <algorithm>

#include "src/base/logging.hh"
#include "src/core/figures.hh"
#include "src/core/sweep.hh"

namespace isim {

namespace {

// ---- Ablations (paper-adjacent what-if experiments) ----

/** A1: associativity sweep at fixed 2 MB on-chip capacity. */
FigureSpec
ablationAssoc(unsigned cpus)
{
    FigureSpec spec;
    spec.id = "Ablation A1";
    spec.title =
        "Associativity sweep, 2MB on-chip L2 - " +
        std::string(cpus == 1 ? "uniprocessor" : "8 processors");
    spec.multiprocessor = cpus > 1;
    for (const unsigned assoc : {1u, 2u, 4u, 8u, 16u}) {
        FigureBar bar;
        bar.config = figures::onchip(cpus, 2 * mib, assoc,
                                     IntegrationLevel::L2Int);
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;
    return spec;
}

/** A3: OS page colouring vs direct-mapped conflicts (sweep). */
FigureSpec
ablationColoring()
{
    SweepSpec sweep;
    sweep.id = "Ablation A3";
    sweep.title = "Page colouring vs direct-mapped conflicts - "
                  "uniprocessor";
    sweep.base = figures::offchip(1, 8 * mib, 1);
    sweep.axes = {
        {"geometry",
         {{"1M1w", [](MachineConfig &c)
           { c = figures::offchip(1, 1 * mib, 1); }},
          {"8M1w", [](MachineConfig &c)
           { c = figures::offchip(1, 8 * mib, 1); }},
          {"2M4w", [](MachineConfig &c)
           { c = figures::offchip(1, 2 * mib, 4); }}}},
        {"colouring",
         {{"random", nullptr},
          // One colour per page slot of the largest cache.
          {"colored", [](MachineConfig &c)
           { c.pageColors = 1024; /* 8MB / 8KB pages */ }}}},
    };
    sweep.normalizeTo = 0;
    return sweep.expand();
}

/** A4: L2 victim buffers vs associativity. */
FigureSpec
ablationVictim()
{
    FigureSpec spec;
    spec.id = "Ablation A4";
    spec.title = "L2 victim buffers vs associativity - uniprocessor, "
                 "2MB on-chip L2";
    spec.multiprocessor = false;
    for (const unsigned entries : {0u, 8u, 32u, 128u}) {
        FigureBar bar;
        bar.config = figures::onchip(1, 2 * mib, 1,
                                     IntegrationLevel::L2Int);
        bar.config.victimBufferEntries = entries;
        bar.config.name = "2M1w vb" + std::to_string(entries);
        spec.bars.push_back(bar);
    }
    FigureBar assoc;
    assoc.config =
        figures::onchip(1, 2 * mib, 8, IntegrationLevel::L2Int);
    assoc.config.name = "2M8w vb0";
    spec.bars.push_back(assoc);
    spec.normalizeTo = 0;
    return spec;
}

/** A5: memory-controller occupancy sweep (machine x occupancy). */
FigureSpec
ablationBandwidth()
{
    SweepSpec sweep;
    sweep.id = "Ablation A5";
    sweep.title = "Memory-controller occupancy sweep - 8 processors";
    sweep.multiprocessor = true;
    sweep.base = figures::baseMachine(8);
    SweepAxis machine{"machine",
                      {{"Base", [](MachineConfig &c)
                        { c = figures::baseMachine(8); }},
                       {"All", [](MachineConfig &c)
                        {
                            c = figures::onchip(
                                8, 2 * mib, 8,
                                IntegrationLevel::FullInt);
                        }}}};
    SweepAxis occupancy{"mc-occupancy", {}};
    for (const Cycles occ : {0u, 20u, 40u, 80u}) {
        occupancy.points.push_back(
            {"mc" + std::to_string(occ),
             [occ](MachineConfig &c) { c.mcOccupancy = occ; }});
    }
    // First axis varies fastest: Base/All alternate within each
    // occupancy step, matching the original bench's bar order.
    sweep.axes = {machine, occupancy};
    sweep.normalizeTo = 0;
    return sweep.expand();
}

// ---- Extensions (paper Section 8 directions) ----

/** E1: chip multiprocessing — 8 cores as chips x cores/chip. */
FigureSpec
extCmp()
{
    FigureSpec spec;
    spec.id = "Extension E1";
    spec.title = "Chip multiprocessing: 8 cores as chips x cores/chip "
                 "(full integration, 2MB 8-way shared L2)";
    spec.multiprocessor = true;
    for (const unsigned cores_per_node : {1u, 2u, 4u, 8u}) {
        FigureBar bar;
        bar.config = figures::onchip(8, 2 * mib, 8,
                                     IntegrationLevel::FullInt);
        bar.config.coresPerNode = cores_per_node;
        bar.config.name = std::to_string(8 / cores_per_node) +
                          " chips x " +
                          std::to_string(cores_per_node) + " cores";
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;
    return spec;
}

/** E2: the integration ladder under OLTP vs DSS. */
FigureSpec
extDss(WorkloadKind kind, const char *tag)
{
    FigureSpec spec;
    spec.id = std::string("Extension E2 (") + tag + ")";
    spec.title = std::string("Integration ladder under ") + tag +
                 " - 8 processors";
    spec.multiprocessor = true;

    FigureBar base;
    base.config = figures::baseMachine(8);
    spec.bars.push_back(base);
    FigureBar l2;
    l2.config = figures::onchip(8, 2 * mib, 8, IntegrationLevel::L2Int);
    spec.bars.push_back(l2);
    FigureBar full;
    full.config =
        figures::onchip(8, 2 * mib, 8, IntegrationLevel::FullInt);
    spec.bars.push_back(full);

    // Cache sensitivity probe: small off-chip L2.
    FigureBar small;
    small.config = figures::offchip(8, 1 * mib, 1);
    spec.bars.push_back(small);

    for (FigureBar &bar : spec.bars) {
        bar.config.workload.kind = kind;
        if (kind == WorkloadKind::DssScan) {
            // Queries are ~100x heavier than transactions; run fewer.
            bar.config.workload.transactions = 60;
            bar.config.workload.warmupTransactions = 20;
        }
        bar.config.name += std::string(" ") + tag;
    }
    spec.normalizeTo = 0;
    return spec;
}

/** E3: sequential L2 prefetching under OLTP vs DSS. */
FigureSpec
extPrefetch(WorkloadKind kind, const char *tag)
{
    FigureSpec spec;
    spec.id = std::string("Extension E3 (") + tag + ")";
    spec.title = std::string("Sequential L2 prefetch under ") + tag +
                 " - uniprocessor, 1MB 4-way";
    for (const unsigned degree : {0u, 1u, 2u, 4u}) {
        FigureBar bar;
        bar.config = figures::offchip(1, 1 * mib, 4);
        bar.config.prefetchDegree = degree;
        bar.config.workload.kind = kind;
        bar.config.name = std::string(tag) + " pf" +
                          std::to_string(degree);
        if (kind == WorkloadKind::DssScan) {
            bar.config.workload.transactions = 80;
            bar.config.workload.warmupTransactions = 25;
        }
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;
    return spec;
}

const char *const cmpNote =
    "Reading: intra-chip sharing converts 3-hop dirty misses into "
    "shared-L2 hits;\nthe capacity cost shows up as extra local/"
    "remote-clean misses when 8 cores\nshare one 2MB cache.\n";

const char *const dssNote =
    "Reading: OLTP gains ~1.4x from full integration; the DSS scan "
    "streams are\nnearly insensitive — their misses are streaming "
    "(no reuse for caches to\nexploit) and amortized over many "
    "instructions per data line. This is the\npaper's Section 1 "
    "justification for studying OLTP, quantified.\n";

const char *const coloringNote =
    "Reading: colouring tiles the hot footprint across cache sets, "
    "recovering much\nof the direct-mapped conflict volume — but "
    "OLTP's hot lines come from many\nindependent regions, so "
    "collisions within a colour remain and associativity\nstill "
    "wins.\n";

const char *const bandwidthNote =
    "Reading: a fixed per-miss occupancy costs the integrated design "
    "relatively\nmore — its miss latencies are short, so queueing is "
    "a larger fraction of\nthem. Keeping the integration gap "
    "therefore *requires* the higher\ncontroller bandwidth that "
    "integration makes available (Section 4): the\nlatency win is "
    "only safe if the bandwidth win comes with it.\n";

} // namespace

FigureRegistry::FigureRegistry()
{
    // Every registration names its warm-up mode explicitly. Atomic is
    // chosen exactly where it is result-identical to a timing warm-up
    // (in-order cores, no MC occupancy — docs/EXECMODE.md, enforced by
    // tests/test_exec_mode.cc); the out-of-order figures and the MC
    // occupancy sweep keep timing warm-up because their warm state
    // depends on event timing.
    const auto add = [&](std::string id, std::string description,
                         ExecMode warmup_mode,
                         std::function<FigureSpec()> make,
                         std::string note = "") {
        entries_.push_back(
            {std::move(id), std::move(description), std::move(note),
             [make = std::move(make), warmup_mode] {
                 FigureSpec spec = make();
                 spec.warmupMode = warmup_mode;
                 return spec;
             }});
    };

    // The paper's figures.
    add("fig05", "Figure 5: off-chip L2 sweep, uniprocessor",
        ExecMode::Atomic, figures::figure5);
    add("fig06", "Figure 6: off-chip L2 sweep, 8 processors",
        ExecMode::Atomic, figures::figure6);
    add("fig07", "Figure 7: integrated L2, uniprocessor",
        ExecMode::Atomic, figures::figure7);
    add("fig08", "Figure 8: integrated L2, 8 processors",
        ExecMode::Atomic, figures::figure8);
    add("fig10-uni", "Figure 10: successive integration, uniprocessor",
        ExecMode::Atomic, figures::figure10Uni);
    add("fig10-mp", "Figure 10: successive integration, 8 processors",
        ExecMode::Atomic, figures::figure10Mp);
    add("fig11", "Figure 11: RAC miss mix, with/without replication",
        ExecMode::Atomic, figures::figure11);
    add("fig12", "Figure 12: RAC performance", ExecMode::Atomic,
        figures::figure12);
    add("fig13-uni", "Figure 13: out-of-order cores, uniprocessor",
        ExecMode::Timing, figures::figure13Uni);
    add("fig13-mp", "Figure 13: out-of-order cores, 8 processors",
        ExecMode::Timing, figures::figure13Mp);

    // Ablations.
    add("ablation-assoc-uni",
        "A1: associativity sweep, 2MB on-chip L2, uniprocessor",
        ExecMode::Atomic, [] { return ablationAssoc(1); });
    add("ablation-assoc-mp",
        "A1: associativity sweep, 2MB on-chip L2, 8 processors",
        ExecMode::Atomic, [] { return ablationAssoc(figures::mpNodes); });
    add("ablation-coloring",
        "A3: OS page colouring vs direct-mapped conflicts",
        ExecMode::Atomic, ablationColoring, coloringNote);
    add("ablation-victim",
        "A4: L2 victim buffers vs associativity", ExecMode::Atomic,
        ablationVictim);
    add("ablation-bandwidth",
        "A5: memory-controller occupancy sweep, 8 processors",
        ExecMode::Timing, ablationBandwidth, bandwidthNote);

    // Extensions.
    add("ext-cmp", "E1: chip multiprocessing, 8 cores as chips x "
                   "cores/chip",
        ExecMode::Atomic, extCmp, cmpNote);
    add("ext-dss-oltp", "E2: integration ladder under OLTP",
        ExecMode::Atomic,
        [] { return extDss(WorkloadKind::TpcB, "OLTP"); });
    add("ext-dss-dss", "E2: integration ladder under DSS",
        ExecMode::Atomic,
        [] { return extDss(WorkloadKind::DssScan, "DSS"); }, dssNote);
    add("ext-prefetch-oltp", "E3: sequential L2 prefetch under OLTP",
        ExecMode::Atomic,
        [] { return extPrefetch(WorkloadKind::TpcB, "OLTP"); });
    add("ext-prefetch-dss", "E3: sequential L2 prefetch under DSS",
        ExecMode::Atomic,
        [] { return extPrefetch(WorkloadKind::DssScan, "DSS"); });

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        for (std::size_t j = i + 1; j < entries_.size(); ++j) {
            isim_assert(entries_[i].id != entries_[j].id,
                        "duplicate figure id '%s'",
                        entries_[i].id.c_str());
        }
    }
}

const FigureRegistry &
FigureRegistry::instance()
{
    static const FigureRegistry registry;
    return registry;
}

const FigureEntry *
FigureRegistry::find(const std::string &id) const
{
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const FigureEntry &e) { return e.id == id; });
    return it == entries_.end() ? nullptr : &*it;
}

std::vector<const FigureEntry *>
FigureRegistry::resolve(const std::string &id) const
{
    if (const FigureEntry *exact = find(id))
        return {exact};
    std::vector<const FigureEntry *> matches;
    if (id.empty())
        return matches;
    for (const FigureEntry &e : entries_) {
        if (e.id.compare(0, id.size(), id) == 0)
            matches.push_back(&e);
    }
    return matches;
}

} // namespace isim
