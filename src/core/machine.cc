/**
 * @file
 * Machine assembly implementation.
 */

#include "src/core/machine.hh"

#include "src/base/logging.hh"
#include "src/core/simulation.hh"
#include "src/cpu/inorder.hh"
#include "src/obs/observability.hh"

namespace isim {

std::string
MachineConfig::label() const
{
    return name;
}

Machine::Machine(const MachineConfig &config) : config_(config)
{
    if (!validCombination(config_.level, config_.l2Impl)) {
        isim_fatal("machine '%s': %s cannot use a %s L2",
                   config_.name.c_str(),
                   integrationLevelName(config_.level),
                   l2ImplName(config_.l2Impl));
    }

    if (config_.numCpus % config_.coresPerNode != 0) {
        isim_fatal("machine '%s': %u cores not divisible by %u "
                   "cores/node",
                   config_.name.c_str(), config_.numCpus,
                   config_.coresPerNode);
    }

    VmConfig vmc;
    vmc.homeMap = HomeMap{config_.nodeShift, config_.numNodes()};
    vmc.coresPerNode = config_.coresPerNode;
    vmc.pageColors = config_.pageColors;
    vmc.seed = mix64(config_.workload.seed ^ 0x5eed);
    vm_ = std::make_unique<VirtualMemory>(vmc);

    kernel_ = std::make_unique<KernelModel>(
        *vm_, config_.numCpus, KernelParams{},
        mix64(config_.workload.seed ^ 0x6e17));

    engine_ = std::make_unique<OltpEngine>(config_.workload, *vm_,
                                           *kernel_, config_.numCpus,
                                           config_.replicateCode);

    MemSysConfig msc;
    msc.numNodes = config_.numNodes();
    msc.coresPerNode = config_.coresPerNode;
    msc.victimBufferEntries = config_.victimBufferEntries;
    msc.prefetchDegree = config_.prefetchDegree;
    msc.mcOccupancy = config_.mcOccupancy;
    msc.l2 = config_.l2;
    msc.racEnabled = config_.rac;
    msc.rac = config_.racGeom;
    msc.lat = config_.latencies();
    msc.nodeShift = config_.nodeShift;
    memSys_ = std::make_unique<MemorySystem>(msc);

    cpus_.reserve(config_.numCpus);
    for (NodeId n = 0; n < config_.numCpus; ++n) {
        if (config_.cpuModel == CpuModel::InOrder) {
            cpus_.push_back(std::make_unique<InOrderCpu>(n, *memSys_));
        } else {
            cpus_.push_back(std::make_unique<OooCpu>(n, *memSys_,
                                                     config_.oooParams));
        }
    }

    sched_ = std::make_unique<Scheduler>(config_.numCpus);
    engine_->createProcesses(*sched_);
}

void
Machine::resetStats()
{
    for (auto &core : cpus_)
        core->resetStats();
    memSys_->resetStats();
    engine_->clearLatencyStats();
    if (obs_ != nullptr)
        obs_->onStatsReset();
}

void
Machine::attachObservability(obs::Observability *o)
{
    obs_ = o;
    obs::Tracer *tracer = o != nullptr ? &o->tracer() : nullptr;
    memSys_->setTracer(tracer);
    engine_->setTracer(tracer);
    if (o == nullptr)
        return;
    o->setCounterSource([this] {
        obs::CounterSnapshot s;
        CpuStats cpu;
        for (const auto &core : cpus_)
            cpu += core->stats();
        s.committedTxns = engine_->committedTransactions();
        s.instructions = cpu.instructions;
        s.busy = cpu.busy;
        s.idle = cpu.idle;
        s.kernelTime = cpu.kernelTime;
        const NodeProtocolStats m = memSys_->aggregateStats();
        s.missInstrLocal = m.instrLocal;
        s.missInstrRemote = m.instrRemote;
        s.missDataLocal = m.dataLocal;
        s.missDataRemoteClean = m.dataRemoteClean;
        s.missDataRemoteDirty = m.dataRemoteDirty;
        s.latchAcquires = engine_->latches().acquires();
        s.latchContended = engine_->latches().contended();
        const obs::Tracer &t = obs_->tracer();
        s.ctxSwitches = t.count(obs::EventKind::CtxSwitch);
        s.nocMsgs = t.count(obs::EventKind::NocEnqueue);
        s.nocBytes = t.nocBytes();
        return s;
    });
}

RunResult
Machine::snapshot() const
{
    RunResult r;
    r.name = config_.name;
    for (const auto &core : cpus_)
        r.cpu += core->stats();
    r.misses = memSys_->aggregateStats();
    if (memSys_->hasRac())
        r.rac = memSys_->aggregateRacCounters();
    r.transactions = engine_->committedTransactions();
    r.dbConsistent = engine_->db().checkConsistency();
    const Histogram &lat = engine_->txnLatency();
    r.txnLatMeanUs = lat.mean();
    r.txnLatP50Us = lat.quantile(0.50);
    r.txnLatP95Us = lat.quantile(0.95);
    r.txnLatP99Us = lat.quantile(0.99);
    return r;
}

RunResult
Machine::run(TraceWriter *trace)
{
    SimOptions opts;
    opts.quantum = config_.workload.quantum;
    opts.trace = trace;
    opts.obs = obs_;
    Simulation sim(*sched_, *kernel_, *engine_, cpus_, opts);

    if (obs_ != nullptr)
        obs_->beginRun(0);
    sim.runUntilWarmupDone();
    const Tick warm_end = sim.wallTime();
    resetStats();
    const std::uint64_t warm_txns = engine_->committedTransactions();

    sim.runUntilMeasurementDone();
    if (obs_ != nullptr)
        obs_->endRun(sim.wallTime());

    RunResult r = snapshot();
    r.transactions = engine_->committedTransactions() - warm_txns;
    r.wallTime = sim.wallTime() - warm_end;
    return r;
}

} // namespace isim
