/**
 * @file
 * Machine assembly implementation.
 */

#include "src/core/machine.hh"

#include "src/base/logging.hh"
#include "src/core/simulation.hh"
#include "src/cpu/inorder.hh"
#include "src/obs/observability.hh"
#include "src/prof/profiler.hh"

namespace isim {

std::string
MachineConfig::label() const
{
    return name;
}

Machine::~Machine() = default;

Machine::Machine(const MachineConfig &config) : config_(config)
{
    if (!validCombination(config_.level, config_.l2Impl)) {
        isim_fatal("machine '%s': %s cannot use a %s L2",
                   config_.name.c_str(),
                   integrationLevelName(config_.level),
                   l2ImplName(config_.l2Impl));
    }

    if (config_.numCpus % config_.coresPerNode != 0) {
        isim_fatal("machine '%s': %u cores not divisible by %u "
                   "cores/node",
                   config_.name.c_str(), config_.numCpus,
                   config_.coresPerNode);
    }

    VmConfig vmc;
    vmc.homeMap = HomeMap{config_.nodeShift, config_.numNodes()};
    vmc.coresPerNode = config_.coresPerNode;
    vmc.pageColors = config_.pageColors;
    vmc.seed = mix64(config_.workload.seed ^ 0x5eed);
    vm_ = std::make_unique<VirtualMemory>(vmc);

    kernel_ = std::make_unique<KernelModel>(
        *vm_, config_.numCpus, KernelParams{},
        mix64(config_.workload.seed ^ 0x6e17));

    engine_ = std::make_unique<OltpEngine>(config_.workload, *vm_,
                                           *kernel_, config_.numCpus,
                                           config_.replicateCode);

    MemSysConfig msc;
    msc.numNodes = config_.numNodes();
    msc.coresPerNode = config_.coresPerNode;
    msc.victimBufferEntries = config_.victimBufferEntries;
    msc.prefetchDegree = config_.prefetchDegree;
    msc.mcOccupancy = config_.mcOccupancy;
    msc.l2 = config_.l2;
    msc.racEnabled = config_.rac;
    msc.rac = config_.racGeom;
    msc.lat = config_.latencies();
    msc.nodeShift = config_.nodeShift;
    memSys_ = std::make_unique<MemorySystem>(msc);

    cpus_.reserve(config_.numCpus);
    for (NodeId n = 0; n < config_.numCpus; ++n) {
        if (config_.cpuModel == CpuModel::InOrder) {
            cpus_.push_back(std::make_unique<InOrderCpu>(n, *memSys_));
        } else {
            cpus_.push_back(std::make_unique<OooCpu>(n, *memSys_,
                                                     config_.oooParams));
        }
    }

    sched_ = std::make_unique<Scheduler>(config_.numCpus);
    engine_->createProcesses(*sched_);

    buildRegistry();
}

void
Machine::buildRegistry()
{
    // Per-CPU execution buckets plus machine-wide sums. The aggregate
    // lambdas walk cpus_ at dump time so they always match the per-CPU
    // values they summarize.
    for (NodeId c = 0; c < config_.numCpus; ++c) {
        cpus_[c]->stats().registerStats(registry_,
                                        "cpu" + std::to_string(c));
    }
    auto cpuSum = [this](Tick CpuStats::*field) {
        return [this, field] {
            Tick total = 0;
            for (const auto &core : cpus_)
                total += core->stats().*field;
            return total;
        };
    };
    auto cpuSumU = [this](std::uint64_t CpuStats::*field) {
        return [this, field] {
            std::uint64_t total = 0;
            for (const auto &core : cpus_)
                total += core->stats().*field;
            return total;
        };
    };
    registry_
        .counter("cpu.busy", "instruction issue time, all CPUs", "ticks",
                 cpuSum(&CpuStats::busy))
        .counter("cpu.l2hit_stall", "L2-hit stall, all CPUs", "ticks",
                 cpuSum(&CpuStats::l2HitStall))
        .counter("cpu.local_stall", "local-memory stall, all CPUs",
                 "ticks", cpuSum(&CpuStats::localStall))
        .counter("cpu.remote_stall", "2-hop remote stall, all CPUs",
                 "ticks", cpuSum(&CpuStats::remoteStall))
        .counter("cpu.remote_dirty_stall",
                 "3-hop remote-dirty stall, all CPUs", "ticks",
                 cpuSum(&CpuStats::remoteDirtyStall))
        .counter("cpu.idle", "idle time, all CPUs", "ticks",
                 cpuSum(&CpuStats::idle))
        .counter("cpu.kernel_time", "kernel-mode time, all CPUs",
                 "ticks", cpuSum(&CpuStats::kernelTime))
        .counter("cpu.instructions", "instructions, all CPUs", "insts",
                 cpuSumU(&CpuStats::instructions))
        .counter("cpu.loads", "load references, all CPUs", "refs",
                 cpuSumU(&CpuStats::loads))
        .counter("cpu.stores", "store references, all CPUs", "refs",
                 cpuSumU(&CpuStats::stores));

    auto allCpu = [this] {
        CpuStats total;
        for (const auto &core : cpus_)
            total += core->stats();
        return total;
    };
    registry_
        .formula("cpu.exec_time",
                 "non-idle execution time, all CPUs (figures' y-axis)",
                 "ticks",
                 [allCpu] { return static_cast<double>(allCpu().nonIdle()); },
                 /*extensive=*/true)
        .formula("cpu.cpi",
                 "cycles per instruction, all CPUs (non-idle / insts)",
                 "cpi",
                 [allCpu] {
                     const CpuStats t = allCpu();
                     return t.instructions
                                ? static_cast<double>(t.nonIdle()) /
                                      static_cast<double>(t.instructions)
                                : 0.0;
                 })
        .formula("cpu.kernel_frac", "kernel share of non-idle time",
                 "ratio", [allCpu] { return allCpu().kernelFraction(); })
        .formula("cpu.busy_frac", "busy share of non-idle time", "ratio",
                 [allCpu] { return allCpu().busyFraction(); });

    // Memory system: per-node protocol + cache counters, per-core L1s.
    const unsigned nodes = config_.numNodes();
    for (NodeId n = 0; n < nodes; ++n) {
        const std::string node = "node" + std::to_string(n);
        memSys_->nodeStats(n).registerStats(registry_, node + ".l2");
        memSys_->l2(n).counters().registerStats(registry_,
                                                node + ".l2.cache");
        if (memSys_->hasRac())
            memSys_->rac(n).counters().registerStats(registry_,
                                                     node + ".rac");
    }
    for (NodeId c = 0; c < config_.numCpus; ++c) {
        const std::string cpu = "cpu" + std::to_string(c);
        memSys_->l1i(c).counters().registerStats(registry_,
                                                 cpu + ".l1i");
        memSys_->l1d(c).counters().registerStats(registry_,
                                                 cpu + ".l1d");
    }
    // Machine-wide miss-class aggregates (what the figures plot).
    auto missSum = [this](std::uint64_t NodeProtocolStats::*field) {
        return [this, field] { return memSys_->aggregateStats().*field; };
    };
    registry_
        .counter("l2.miss.instr_local",
                 "instruction misses to the local home, all nodes",
                 "misses", missSum(&NodeProtocolStats::instrLocal))
        .counter("l2.miss.instr_remote",
                 "instruction misses to a remote home, all nodes",
                 "misses", missSum(&NodeProtocolStats::instrRemote))
        .counter("l2.miss.local",
                 "data misses satisfied locally, all nodes", "misses",
                 missSum(&NodeProtocolStats::dataLocal))
        .counter("l2.miss.remote_clean",
                 "2-hop data misses, all nodes", "misses",
                 missSum(&NodeProtocolStats::dataRemoteClean))
        .counter("l2.miss.remote_dirty",
                 "3-hop data misses, all nodes", "misses",
                 missSum(&NodeProtocolStats::dataRemoteDirty))
        .counter("l2.miss.total", "L2 misses, all nodes and classes",
                 "misses",
                 [this] {
                     return memSys_->aggregateStats().totalL2Misses();
                 })
        .counter("l2.store_refs", "store references, all nodes", "refs",
                 missSum(&NodeProtocolStats::storeRefs))
        .counter("l2.stores_causing_inval",
                 "stores invalidating at least one remote copy, "
                 "all nodes",
                 "refs", missSum(&NodeProtocolStats::storesCausingInval))
        .counter("l2.invals_sent",
                 "remote copies invalidated, all nodes", "ops",
                 missSum(&NodeProtocolStats::invalidationsSent))
        .counter("l2.upgrades", "ownership-only transactions, all nodes",
                 "ops", missSum(&NodeProtocolStats::upgrades));

    registry_.formula("l2.mpki", "L2 misses per kilo-instruction",
                      "misses/ki", [this] {
                          const std::uint64_t insts = [this] {
                              std::uint64_t total = 0;
                              for (const auto &core : cpus_)
                                  total += core->stats().instructions;
                              return total;
                          }();
                          const auto misses =
                              memSys_->aggregateStats().totalL2Misses();
                          return insts ? 1000.0 *
                                             static_cast<double>(misses) /
                                             static_cast<double>(insts)
                                       : 0.0;
                      });
    registry_.formula("l2.inval_per_store",
                      "remote invalidations per store reference", "ratio",
                      [this] {
                          const NodeProtocolStats m =
                              memSys_->aggregateStats();
                          return m.storeRefs
                                     ? static_cast<double>(
                                           m.invalidationsSent) /
                                           static_cast<double>(m.storeRefs)
                                     : 0.0;
                      });
    if (memSys_->hasRac()) {
        registry_.formula("rac.hit_rate",
                          "machine-wide RAC demand hit rate", "ratio",
                          [this] {
                              return memSys_->aggregateRacCounters()
                                  .hitRate();
                          });
    }

    // Interconnect traffic (always counted, tracer or not).
    memSys_->nocStats().registerStats(registry_, "noc");

    // OLTP engine: transactions, latches, buffer cache, redo log.
    engine_->registerStats(registry_);

    // Component resets. The registry owns the warm-up boundary: every
    // stat source above must be covered by exactly one hook here (the
    // engine hangs its own hook inside registerStats).
    registry_.onReset([this] {
        for (auto &core : cpus_)
            core->resetStats();
        memSys_->resetStats();
    });
}

void
Machine::resetStats()
{
    registry_.resetAll();
    if (obs_ != nullptr)
        obs_->onStatsReset();
}

void
Machine::attachObservability(obs::Observability *o)
{
    obs_ = o;
    obs::Tracer *tracer = o != nullptr ? &o->tracer() : nullptr;
    memSys_->setTracer(tracer);
    engine_->setTracer(tracer);
    if (o == nullptr)
        return;
    o->setCounterSource([this] {
        obs::CounterSnapshot s;
        CpuStats cpu;
        for (const auto &core : cpus_)
            cpu += core->stats();
        s.committedTxns = engine_->committedTransactions();
        s.instructions = cpu.instructions;
        s.busy = cpu.busy;
        s.idle = cpu.idle;
        s.kernelTime = cpu.kernelTime;
        const NodeProtocolStats m = memSys_->aggregateStats();
        s.missInstrLocal = m.instrLocal;
        s.missInstrRemote = m.instrRemote;
        s.missDataLocal = m.dataLocal;
        s.missDataRemoteClean = m.dataRemoteClean;
        s.missDataRemoteDirty = m.dataRemoteDirty;
        s.latchAcquires = engine_->latches().acquires();
        s.latchContended = engine_->latches().contended();
        s.ctxSwitches = obs_->tracer().count(obs::EventKind::CtxSwitch);
        // NoC load comes from the always-on protocol counters, so
        // epoch rows report it even when event tracing is off
        // (--stats-epoch without --trace-*).
        s.nocMsgs = memSys_->nocStats().messages;
        s.nocBytes = memSys_->nocStats().bytes;
        return s;
    });
}

RunResult
Machine::snapshot() const
{
    RunResult r;
    r.name = config_.name;
    for (const auto &core : cpus_)
        r.cpu += core->stats();
    r.misses = memSys_->aggregateStats();
    if (memSys_->hasRac())
        r.rac = memSys_->aggregateRacCounters();
    r.transactions = engine_->measuredCommitted();
    r.dbConsistent = engine_->db().checkConsistency();
    const Histogram &lat = engine_->txnLatency();
    r.txnLatMeanUs = lat.mean();
    r.txnLatP50Us = lat.quantile(0.50);
    r.txnLatP95Us = lat.quantile(0.95);
    r.txnLatP99Us = lat.quantile(0.99);
    r.stats = registry_.snapshot();
    return r;
}

void
Machine::ensureSim(TraceWriter *trace)
{
    if (sim_ != nullptr)
        return;
    SimOptions opts;
    opts.quantum = config_.workload.quantum;
    opts.model = config_.cpuModel;
    opts.trace = trace;
    opts.maxSteps = maxSteps_;
    opts.obs = obs_;
    sim_ = std::make_unique<Simulation>(*sched_, *kernel_, *engine_,
                                        cpus_, opts);
    if (pendingSim_ != nullptr) {
        sim_->restoreState(*pendingSim_);
        pendingSim_.reset();
    }
}

void
Machine::runWarmup(ExecMode mode, TraceWriter *trace)
{
    isim_assert(!warmupRan_, "warm-up already ran (or was restored)");
    ISIM_PROF_PHASE(prof::Phase::Warmup);
    ISIM_PROF_SCOPE("warmup");
    ensureSim(trace);
    if (mode == ExecMode::Timing) {
        // The observability window opens at time 0 only for a timing
        // warm-up; the atomic path drives no timeline, so its window
        // opens at the warm boundary instead (runMeasurement).
        if (obs_ != nullptr)
            obs_->beginRun(0);
        obsBegun_ = true;
    }
    sim_->runUntilWarmupDone(mode);
    warmEnd_ = sim_->wallTime();
    resetStats(); // rebases oltp.txn.committed via the registry hook
    warmupRan_ = true;
    warmupMode_ = mode;
}

RunResult
Machine::runMeasurement(ExecMode mode, TraceWriter *trace)
{
    isim_assert(warmupRan_, "runMeasurement before warm-up");
    ISIM_PROF_PHASE(prof::Phase::Measure);
    ISIM_PROF_SCOPE("measure");
    ensureSim(trace);
    if (!obsBegun_) {
        // Atomic warm-up or checkpoint restore: the run is announced
        // at the warm boundary.
        if (obs_ != nullptr)
            obs_->beginRun(warmEnd_);
        obsBegun_ = true;
    }
    sim_->runUntilMeasurementDone(mode);
    if (obs_ != nullptr)
        obs_->endRun(sim_->wallTime());

    RunResult r = snapshot();
    r.warmupMode = warmupMode_;
    r.execMode = mode;
    r.wallTime = sim_->wallTime() - warmEnd_;
    if (obs_ != nullptr && obs_->sampler() != nullptr)
        r.epochs = obs_->sampler()->rows();
    return r;
}

RunResult
Machine::run(ExecMode warmup_mode, ExecMode exec_mode, TraceWriter *trace)
{
    if (!warmupRan_)
        runWarmup(warmup_mode, trace);
    return runMeasurement(exec_mode, trace);
}

std::uint64_t
Machine::timingEvents() const
{
    return sim_ != nullptr ? sim_->timingEvents() : 0;
}

// Deprecated pre-ExecMode entry points (see machine.hh).
RunResult
Machine::run(TraceWriter *trace)
{
    return run(ExecMode::Timing, ExecMode::Timing, trace);
}

void
Machine::runWarmup(TraceWriter *trace)
{
    runWarmup(ExecMode::Timing, trace);
}

} // namespace isim
