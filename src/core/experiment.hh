/**
 * @file
 * Experiment harness: a figure is a list of machine configurations
 * plus the paper's published (normalized) bar heights; running it
 * produces measured results side by side with the paper's values.
 *
 * Every bar of a figure is an independent machine, so the runner
 * executes them on a small worker pool (RunOptions::jobs threads,
 * default one per core). Each run is self-contained — per-machine
 * state, per-run observability bundle, RNG seeded from the config —
 * and every option that used to be read from the environment mid-run
 * is resolved once, up front, in RunOptions; results land in spec
 * order regardless of completion order, so a figure's output is
 * bit-identical at any job count.
 */

#ifndef ISIM_CORE_EXPERIMENT_HH
#define ISIM_CORE_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "src/config/run_options.hh"
#include "src/core/machine.hh"
#include "src/obs/observability.hh"

namespace isim {

struct SweepSpec;

/** One bar of a figure. */
struct FigureBar
{
    MachineConfig config;
    /** Paper's normalized execution time (percent), if legible. */
    std::optional<double> paperExecTime;
    /** Paper's normalized L2 miss count (percent), if legible. */
    std::optional<double> paperMisses;
};

/** A full figure (or table) specification. */
struct FigureSpec
{
    std::string id;    //!< e.g. "Figure 5"
    std::string title;
    std::vector<FigureBar> bars;
    std::size_t normalizeTo = 0; //!< bar whose value is 100
    bool multiprocessor = false;
    /**
     * Default warm-up execution mode of every bar (the registry sets
     * it per figure; --warmup-mode overrides it). Atomic is only the
     * default where it is provably result-identical to a timing
     * warm-up — in-order cores without MC contention; see
     * docs/EXECMODE.md.
     */
    ExecMode warmupMode = ExecMode::Timing;
};

/** Result of running a figure. */
struct FigureResult
{
    FigureSpec spec;
    std::vector<RunResult> runs;
};

/**
 * Filesystem slug of a machine name (lower-cased alphanumerics,
 * everything else `_`, 64 chars max — the figure-stem rules), and the
 * checkpoint path `<dir>/<slug>.ckpt` the runner saves/restores.
 */
std::string checkpointSlug(const std::string &name);
std::string checkpointPath(const std::string &dir,
                           const std::string &name);

/**
 * Runs every configuration of a figure, concurrently when the
 * options allow (each run builds a fresh machine; see RunOptions).
 */
class ExperimentRunner
{
  public:
    /** Options from the environment (RunOptions::fromEnv). */
    explicit ExperimentRunner(bool verbose = true)
        : options_(RunOptions::fromEnv())
    {
        options_.verbose = verbose;
    }

    /** Explicit options (flags already folded in by the caller). */
    explicit ExperimentRunner(const RunOptions &options)
        : options_(options)
    {
    }

    FigureResult run(const FigureSpec &spec) const;
    /** Expand the sweep's cross-product and run it like a figure. */
    FigureResult run(const SweepSpec &sweep) const;
    /**
     * Run one configuration. `spec_warmup` is the owning figure's
     * default warm-up mode; the options' --warmup-mode wins over it.
     */
    RunResult runOne(const MachineConfig &config,
                     ExecMode spec_warmup = ExecMode::Timing) const;
    /** Run one configuration with an observability bundle attached. */
    RunResult runObserved(const MachineConfig &config,
                          obs::Observability &o,
                          ExecMode spec_warmup = ExecMode::Timing) const;

    const RunOptions &options() const { return options_; }

    /**
     * Observe one bar of each figure run (default: none). The bar
     * index is clamped to the figure's bar count; output files are
     * written as soon as the observed bar finishes.
     */
    void setObsConfig(const obs::ObsConfig &config)
    {
        options_.obs = config;
    }
    const obs::ObsConfig &obsConfig() const { return options_.obs; }

    /**
     * Apply the ISIM_TXNS / ISIM_WARMUP / ISIM_SEED environment
     * overrides to a workload (legacy shim over RunOptions::fromEnv).
     */
    static void applyEnvOverrides(WorkloadParams &params);

  private:
    RunResult runBar(const FigureSpec &spec, std::size_t index,
                     std::size_t observed_index) const;
    /**
     * Build (or restore, with fromCkptDir) the machine, run it, and
     * save a warm checkpoint when saveCkptDir asks for one. The
     * shared back end of runOne / runObserved.
     */
    RunResult runMachine(const MachineConfig &config,
                         obs::Observability *o,
                         ExecMode spec_warmup) const;

    RunOptions options_;
};

} // namespace isim

#endif // ISIM_CORE_EXPERIMENT_HH
