/**
 * @file
 * Experiment harness: a figure is a list of machine configurations
 * plus the paper's published (normalized) bar heights; running it
 * produces measured results side by side with the paper's values.
 */

#ifndef ISIM_CORE_EXPERIMENT_HH
#define ISIM_CORE_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "src/core/machine.hh"
#include "src/obs/observability.hh"

namespace isim {

/** One bar of a figure. */
struct FigureBar
{
    MachineConfig config;
    /** Paper's normalized execution time (percent), if legible. */
    std::optional<double> paperExecTime;
    /** Paper's normalized L2 miss count (percent), if legible. */
    std::optional<double> paperMisses;
};

/** A full figure (or table) specification. */
struct FigureSpec
{
    std::string id;    //!< e.g. "Figure 5"
    std::string title;
    std::vector<FigureBar> bars;
    std::size_t normalizeTo = 0; //!< bar whose value is 100
    bool multiprocessor = false;
};

/** Result of running a figure. */
struct FigureResult
{
    FigureSpec spec;
    std::vector<RunResult> runs;
};

/**
 * Runs every configuration of a figure (sequentially; each run builds
 * a fresh machine). Honors the ISIM_TXNS / ISIM_WARMUP environment
 * overrides so quick CI runs are possible.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(bool verbose = true)
        : verbose_(verbose)
    {
    }

    FigureResult run(const FigureSpec &spec) const;
    RunResult runOne(const MachineConfig &config) const;
    /** Run one configuration with an observability bundle attached. */
    RunResult runObserved(const MachineConfig &config,
                          obs::Observability &o) const;

    /**
     * Observe one bar of each figure run (default: none). The bar
     * index is clamped to the figure's bar count; output files are
     * written as soon as the observed bar finishes.
     */
    void setObsConfig(const obs::ObsConfig &config)
    {
        obsConfig_ = config;
    }
    const obs::ObsConfig &obsConfig() const { return obsConfig_; }

    /** Apply the environment overrides to a workload. */
    static void applyEnvOverrides(WorkloadParams &params);

  private:
    bool verbose_;
    obs::ObsConfig obsConfig_;
};

} // namespace isim

#endif // ISIM_CORE_EXPERIMENT_HH
