/**
 * @file
 * Event-kind names and categories.
 */

#include "src/obs/event.hh"

namespace isim::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::MissIssued:
        return "MissIssued";
      case EventKind::MissCompleted:
        return "MissCompleted";
      case EventKind::DirRead:
        return "DirRead";
      case EventKind::DirWrite:
        return "DirWrite";
      case EventKind::DirUpgrade:
        return "DirUpgrade";
      case EventKind::NocEnqueue:
        return "NocEnqueue";
      case EventKind::NocDequeue:
        return "NocDequeue";
      case EventKind::LatchAcquire:
        return "LatchAcquire";
      case EventKind::LatchContend:
        return "LatchContend";
      case EventKind::LatchRelease:
        return "LatchRelease";
      case EventKind::TxnBegin:
        return "TxnBegin";
      case EventKind::TxnCommit:
        return "TxnCommit";
      case EventKind::CtxSwitch:
        return "CtxSwitch";
    }
    return "?";
}

const char *
eventKindCategory(EventKind kind)
{
    switch (kind) {
      case EventKind::MissIssued:
      case EventKind::MissCompleted:
        return "mem";
      case EventKind::DirRead:
      case EventKind::DirWrite:
      case EventKind::DirUpgrade:
        return "dir";
      case EventKind::NocEnqueue:
      case EventKind::NocDequeue:
        return "noc";
      case EventKind::LatchAcquire:
      case EventKind::LatchContend:
      case EventKind::LatchRelease:
        return "latch";
      case EventKind::TxnBegin:
      case EventKind::TxnCommit:
        return "txn";
      case EventKind::CtxSwitch:
        return "os";
    }
    return "?";
}

} // namespace isim::obs
