/**
 * @file
 * The observability bundle: configuration plus the Tracer and the
 * TimelineSampler for one run, and the write-out of whatever outputs
 * were requested. A Machine is observed by attaching one of these
 * (Machine::attachObservability); the simulation loop drives the
 * clock and the sampler through the SimOptions::obs pointer.
 */

#ifndef ISIM_OBS_OBSERVABILITY_HH
#define ISIM_OBS_OBSERVABILITY_HH

#include <memory>
#include <string>

#include "src/obs/sampler.hh"
#include "src/obs/tracer.hh"

namespace isim::obs {

/** What to capture and where to write it. */
struct ObsConfig
{
    std::string traceOutPath;    //!< Chrome trace_event JSON
    std::string traceBinPath;    //!< binary capture for tools/itrace
    std::string timelineOutPath; //!< epoch timeline CSV
    Tick epochTicks = 1000000;   //!< sampler epoch (default 1 ms)
    std::size_t ringCapacity = 1u << 18; //!< events retained (8 MiB)
    /** Which figure bar to observe when a spec has several. */
    std::size_t traceBar = 0;
    /**
     * Run the epoch sampler even with no timeline CSV requested, so
     * the per-run stats manifest can embed per-epoch rows
     * (--stats-epoch). Event tracing stays off in this mode: epoch
     * columns fed from trace counts (ctx switches) read zero.
     */
    bool sampleEpochs = false;

    bool wantsEvents() const
    {
        return !traceOutPath.empty() || !traceBinPath.empty();
    }
    bool wantsTimeline() const { return !timelineOutPath.empty(); }
    bool wantsSampler() const { return wantsTimeline() || sampleEpochs; }
    bool any() const { return wantsEvents() || wantsSampler(); }
};

/** Tracer + sampler for one observed run. */
class Observability
{
  public:
    explicit Observability(const ObsConfig &config);

    const ObsConfig &config() const { return config_; }
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** Install the counter source the sampler snapshots. */
    void setCounterSource(TimelineSampler::Source source);

    /** Begin the run: enable tracing, start the sampler at `now`. */
    void beginRun(Tick now);
    /** Simulation-loop hook: advance the sampler to the global time. */
    void advance(Tick now)
    {
        if (sampler_ && sampler_->due(now))
            sampler_->advance(now);
    }
    /** Stats were reset mid-run (warm-up boundary). */
    void onStatsReset();
    /** End of run at `now`: close the last epoch. */
    void endRun(Tick now);

    const TimelineSampler *sampler() const { return sampler_.get(); }

    /**
     * Write every requested output file; returns a human-readable
     * description of what was written (for the run log).
     */
    std::string writeOutputs() const;

  private:
    ObsConfig config_;
    Tracer tracer_;
    std::unique_ptr<TimelineSampler> sampler_;
};

} // namespace isim::obs

#endif // ISIM_OBS_OBSERVABILITY_HH
