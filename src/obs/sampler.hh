/**
 * @file
 * Epoch timeline sampler: snapshots a set of machine-wide counters
 * every N simulated ticks and stores the per-epoch deltas, turning
 * the end-of-run aggregate breakdowns (miss mix, TPS, latch traffic,
 * kernel share) into a plottable time series.
 *
 * Epoch boundaries are anchored to the absolute tick grid (multiples
 * of the epoch length), so the first epoch of a run that starts
 * mid-grid and the last epoch at run end are *partial* — their rows
 * carry their true [start, end) extent, which is what a plotter needs
 * to normalize rates.
 */

#ifndef ISIM_OBS_SAMPLER_HH
#define ISIM_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/types.hh"

namespace isim::obs {

/** Counters sampled at every epoch boundary (machine-wide sums). */
struct CounterSnapshot
{
    std::uint64_t committedTxns = 0;
    std::uint64_t instructions = 0;
    Tick busy = 0;
    Tick idle = 0;
    Tick kernelTime = 0;

    // L2 misses by the paper's classes.
    std::uint64_t missInstrLocal = 0;
    std::uint64_t missInstrRemote = 0;
    std::uint64_t missDataLocal = 0;
    std::uint64_t missDataRemoteClean = 0;
    std::uint64_t missDataRemoteDirty = 0;

    std::uint64_t latchAcquires = 0;
    std::uint64_t latchContended = 0;
    std::uint64_t ctxSwitches = 0;
    std::uint64_t nocMsgs = 0;
    std::uint64_t nocBytes = 0;

    std::uint64_t totalMisses() const
    {
        return missInstrLocal + missInstrRemote + missDataLocal +
               missDataRemoteClean + missDataRemoteDirty;
    }

    /**
     * Per-field delta since `base`, saturating at zero: a counter
     * that went *backwards* (the warm-up stats reset) contributes its
     * post-reset value instead of an underflowed garbage delta.
     */
    CounterSnapshot since(const CounterSnapshot &base) const;
};

/** One row of the timeline: counter deltas over [start, end). */
struct EpochRow
{
    std::uint64_t epoch = 0; //!< index on the absolute epoch grid
    Tick start = 0;
    Tick end = 0;
    CounterSnapshot delta;

    double tps() const
    {
        return end > start ? static_cast<double>(delta.committedTxns) *
                                 1e9 /
                                 static_cast<double>(end - start)
                           : 0.0;
    }
};

/** The sampler proper. */
class TimelineSampler
{
  public:
    using Source = std::function<CounterSnapshot()>;

    TimelineSampler(Tick epoch_ticks, Source source);

    Tick epochTicks() const { return epochTicks_; }

    /** Begin sampling at `now` (takes the base snapshot). */
    void start(Tick now);

    /** Cheap boundary test for the simulation loop's hot path. */
    bool due(Tick now) const { return started_ && now >= next_; }

    /**
     * Advance the sampler to `now`, emitting one row per completed
     * epoch (idle gaps produce zero-delta rows, which is the honest
     * shape of an idle period).
     */
    void advance(Tick now);

    /** Close the final (partial) epoch at `now`. */
    void finish(Tick now);

    /** Re-take the base snapshot (after an external stats reset). */
    void rebase();

    const std::vector<EpochRow> &rows() const { return rows_; }

  private:
    void emitRow(Tick end);

    Tick epochTicks_;
    Source source_;
    std::vector<EpochRow> rows_;
    CounterSnapshot prev_;
    Tick cur_ = 0;   //!< start of the open epoch
    Tick next_ = 0;  //!< next boundary on the absolute grid
    bool started_ = false;
    bool finished_ = false;
};

} // namespace isim::obs

#endif // ISIM_OBS_SAMPLER_HH
