/**
 * @file
 * Observability exporters: Chrome trace_event JSON (loadable in
 * Perfetto / chrome://tracing), timeline CSV, and the binary capture
 * format consumed by tools/itrace.
 *
 * Chrome track layout: pid 1 ("cpus") carries per-core memory /
 * directory / latch / OS events (tid = core id); pid 2
 * ("transactions") carries transaction spans (tid = server pid);
 * pid 3 ("noc") carries interconnect hops (tid = source node).
 */

#ifndef ISIM_OBS_EXPORT_HH
#define ISIM_OBS_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/event.hh"
#include "src/obs/sampler.hh"
#include "src/obs/tracer.hh"

namespace isim::obs {

/** Write Chrome trace_event JSON for a list of events. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      std::uint64_t dropped = 0);

/** Convenience: export everything retained in a tracer's ring. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/** Header line of the timeline CSV (no trailing newline). */
const char *timelineCsvHeader();

/** Write the sampler's rows as CSV (header + one line per epoch). */
void writeTimelineCsv(std::ostream &os, const TimelineSampler &sampler);

/** Write events as a flat CSV (header + one line per event). */
void writeEventCsv(std::ostream &os,
                   const std::vector<TraceEvent> &events);

/** One summary line per event kind present (plus totals). */
void writeSummary(std::ostream &os,
                  const std::vector<TraceEvent> &events,
                  std::uint64_t dropped, std::size_t capacity);

// ---- Binary captures (the `itrace` interchange format) ----

/** Capture file header (fixed 32 bytes, little-endian host order). */
struct CaptureHeader
{
    std::uint64_t magic = 0;    //!< captureMagic
    std::uint64_t count = 0;    //!< events stored in the file
    std::uint64_t pushed = 0;   //!< events ever recorded
    std::uint64_t capacity = 0; //!< ring capacity at record time
};

inline constexpr std::uint64_t captureMagic = 0x3143525449534900; // "\0ISITRC1"

/** Write the tracer's retained events as a binary capture. fatal() on I/O error. */
void writeCapture(const std::string &path, const Tracer &tracer);

/**
 * Read a capture written by writeCapture. Returns false (with an
 * error message in `err`) on malformed input.
 */
bool readCapture(const std::string &path, CaptureHeader &header,
                 std::vector<TraceEvent> &events, std::string &err);

} // namespace isim::obs

#endif // ISIM_OBS_EXPORT_HH
