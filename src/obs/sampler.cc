/**
 * @file
 * Timeline sampler implementation.
 */

#include "src/obs/sampler.hh"

#include <utility>

#include "src/base/logging.hh"

namespace isim::obs {

namespace {

std::uint64_t
satSub(std::uint64_t a, std::uint64_t b)
{
    return a >= b ? a - b : a;
}

} // namespace

CounterSnapshot
CounterSnapshot::since(const CounterSnapshot &base) const
{
    CounterSnapshot d;
    d.committedTxns = satSub(committedTxns, base.committedTxns);
    d.instructions = satSub(instructions, base.instructions);
    d.busy = satSub(busy, base.busy);
    d.idle = satSub(idle, base.idle);
    d.kernelTime = satSub(kernelTime, base.kernelTime);
    d.missInstrLocal = satSub(missInstrLocal, base.missInstrLocal);
    d.missInstrRemote = satSub(missInstrRemote, base.missInstrRemote);
    d.missDataLocal = satSub(missDataLocal, base.missDataLocal);
    d.missDataRemoteClean =
        satSub(missDataRemoteClean, base.missDataRemoteClean);
    d.missDataRemoteDirty =
        satSub(missDataRemoteDirty, base.missDataRemoteDirty);
    d.latchAcquires = satSub(latchAcquires, base.latchAcquires);
    d.latchContended = satSub(latchContended, base.latchContended);
    d.ctxSwitches = satSub(ctxSwitches, base.ctxSwitches);
    d.nocMsgs = satSub(nocMsgs, base.nocMsgs);
    d.nocBytes = satSub(nocBytes, base.nocBytes);
    return d;
}

TimelineSampler::TimelineSampler(Tick epoch_ticks, Source source)
    : epochTicks_(epoch_ticks), source_(std::move(source))
{
    isim_assert(epochTicks_ > 0, "epoch length must be positive");
    isim_assert(source_ != nullptr, "sampler needs a counter source");
}

void
TimelineSampler::start(Tick now)
{
    isim_assert(!started_, "sampler started twice");
    started_ = true;
    cur_ = now;
    // First boundary: the next grid line strictly after `now`, so a
    // start mid-grid yields a partial first epoch.
    next_ = (now / epochTicks_ + 1) * epochTicks_;
    prev_ = source_();
}

void
TimelineSampler::emitRow(Tick end)
{
    const CounterSnapshot cur = source_();
    EpochRow row;
    row.epoch = cur_ / epochTicks_;
    row.start = cur_;
    row.end = end;
    row.delta = cur.since(prev_);
    rows_.push_back(row);
    prev_ = cur;
    cur_ = end;
}

void
TimelineSampler::advance(Tick now)
{
    if (!started_ || finished_)
        return;
    while (now >= next_) {
        emitRow(next_);
        next_ += epochTicks_;
    }
}

void
TimelineSampler::finish(Tick now)
{
    if (!started_ || finished_)
        return;
    advance(now);
    if (now > cur_)
        emitRow(now); // trailing partial epoch
    finished_ = true;
}

void
TimelineSampler::rebase()
{
    if (started_ && !finished_)
        prev_ = source_();
}

} // namespace isim::obs
