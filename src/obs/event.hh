/**
 * @file
 * The observability event taxonomy: one compact POD record per
 * simulator event. Events are written into a bounded ring
 * (obs/ring.hh) by the Tracer (obs/tracer.hh) and exported to Chrome
 * trace_event JSON / CSV / binary captures (obs/export.hh).
 *
 * The record is a fixed 32 bytes so captures are cheap to write and
 * memory-map friendly; meaning of the generic fields per kind:
 *
 *   kind          tick        dur        cpu        arg        addr
 *   MissIssued    issue time  0          core       home node  line addr
 *   MissCompleted issue time  stall      core       home node  line addr
 *   DirRead/Write issue time  stall      core       home node  line addr
 *   DirUpgrade    issue time  stall      core       home node  line addr
 *   NocEnqueue    send time   0          src node   dst node   line addr
 *   NocDequeue    recv time   0          src node   dst node   line addr
 *   LatchAcquire  emit time   0          cpu        latch id   latch addr
 *   LatchContend  emit time   0          cpu        latch id   latch addr
 *   LatchRelease  emit time   0          cpu        latch id   latch addr
 *   TxnBegin      begin time  0          cpu        pid        0
 *   TxnCommit     begin time  latency    cpu        pid        0
 *   CtxSwitch     switch time 0          cpu        next pid   0
 *
 * The `cls` byte carries the MissClass (low nibble) plus flag bits
 * for memory events, payload bytes for NoC events, and is unused
 * elsewhere.
 */

#ifndef ISIM_OBS_EVENT_HH
#define ISIM_OBS_EVENT_HH

#include <cstdint>
#include <type_traits>

#include "src/base/types.hh"

namespace isim::obs {

/** Every event type the tracer can record. */
enum class EventKind : std::uint8_t {
    MissIssued = 0, //!< an L2 miss left the node
    MissCompleted,  //!< any non-L1-hit access finished (span)
    DirRead,        //!< directory read transaction (span)
    DirWrite,       //!< directory write/ownership transaction (span)
    DirUpgrade,     //!< ownership-only upgrade transaction (span)
    NocEnqueue,     //!< message handed to the interconnect
    NocDequeue,     //!< message delivered by the interconnect
    LatchAcquire,   //!< latch acquired, previously free / same node
    LatchContend,   //!< latch acquired after another node held it
    LatchRelease,   //!< latch released
    TxnBegin,       //!< transaction started on a server
    TxnCommit,      //!< transaction committed (span = latency)
    CtxSwitch,      //!< scheduler dispatched a new process
};

inline constexpr unsigned numEventKinds = 13;

const char *eventKindName(EventKind kind);

/** Coarse subsystem of an event kind ("mem", "dir", "noc", ...). */
const char *eventKindCategory(EventKind kind);

// `cls` flag bits for MissCompleted / Dir* events. The low nibble is
// the MissClass enumerator value (protocol.hh).
inline constexpr std::uint8_t clsClassMask = 0x0f;
inline constexpr std::uint8_t clsUpgrade = 0x80; //!< ownership-only
inline constexpr std::uint8_t clsRacHit = 0x40;  //!< served by the RAC

/** One recorded event; see the file comment for field meanings. */
struct TraceEvent
{
    Tick tick = 0;          //!< start time (ns)
    Tick dur = 0;           //!< duration (0 = instant event)
    Addr addr = 0;          //!< line / latch address, or 0
    std::uint32_t arg = 0;  //!< kind-specific (node, pid, latch id)
    std::uint16_t cpu = 0;  //!< emitting core / source node
    EventKind kind = EventKind::MissIssued;
    std::uint8_t cls = 0;   //!< class + flags, or NoC message bytes
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay packed");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent is written raw into captures");

} // namespace isim::obs

#endif // ISIM_OBS_EVENT_HH
