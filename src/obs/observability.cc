/**
 * @file
 * Observability bundle implementation.
 */

#include "src/obs/observability.hh"

#include <fstream>
#include <utility>

#include "src/base/logging.hh"
#include "src/obs/export.hh"

namespace isim::obs {

Observability::Observability(const ObsConfig &config)
    : config_(config), tracer_(config.ringCapacity)
{
}

void
Observability::setCounterSource(TimelineSampler::Source source)
{
    if (config_.wantsSampler()) {
        sampler_ = std::make_unique<TimelineSampler>(
            config_.epochTicks, std::move(source));
    }
}

void
Observability::beginRun(Tick now)
{
    // Event recording costs ring writes on the hot path; leave it off
    // when the bundle exists only to drive the epoch sampler.
    tracer_.setEnabled(config_.wantsEvents() || config_.wantsTimeline());
    if (sampler_)
        sampler_->start(now);
}

void
Observability::onStatsReset()
{
    if (sampler_)
        sampler_->rebase();
}

void
Observability::endRun(Tick now)
{
    if (sampler_)
        sampler_->finish(now);
    tracer_.setEnabled(false);
}

namespace {

void
writeFileOrDie(const std::string &path, const std::string &what,
               const std::function<void(std::ostream &)> &emit)
{
    std::ofstream out(path);
    if (!out)
        isim_fatal("cannot open %s file '%s'", what.c_str(),
                   path.c_str());
    emit(out);
    if (!out)
        isim_fatal("write to %s file '%s' failed", what.c_str(),
                   path.c_str());
}

} // namespace

std::string
Observability::writeOutputs() const
{
    std::string written;
    auto note = [&](const std::string &path) {
        if (!written.empty())
            written += ", ";
        written += path;
    };
#ifndef ISIM_OBS
    if (config_.wantsEvents())
        isim_warn("built with ISIM_OBS=OFF: event trace will be empty");
#endif
    if (!config_.traceOutPath.empty()) {
        writeFileOrDie(config_.traceOutPath, "trace",
                       [&](std::ostream &os) {
                           writeChromeTrace(os, tracer_);
                       });
        note(config_.traceOutPath);
    }
    if (!config_.traceBinPath.empty()) {
        writeCapture(config_.traceBinPath, tracer_);
        note(config_.traceBinPath);
    }
    if ((!config_.traceOutPath.empty() ||
         !config_.traceBinPath.empty()) &&
        tracer_.ring().dropped() > 0) {
        // The ring was full, so pushed() is known exactly; suggest
        // the next power of two that would have held everything.
        std::size_t suggested = 1;
        while (suggested < tracer_.ring().pushed())
            suggested *= 2;
        isim_warn("trace ring overflowed: %llu events were lost "
                  "(ring capacity %zu); rerun with --trace-ring=%zu "
                  "to capture them all",
                  static_cast<unsigned long long>(
                      tracer_.ring().dropped()),
                  tracer_.ring().capacity(), suggested);
    }
    if (!config_.timelineOutPath.empty() && sampler_ != nullptr) {
        writeFileOrDie(config_.timelineOutPath, "timeline",
                       [&](std::ostream &os) {
                           writeTimelineCsv(os, *sampler_);
                       });
        note(config_.timelineOutPath);
    }
    return written;
}

} // namespace isim::obs
