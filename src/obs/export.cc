/**
 * @file
 * Exporter implementations.
 */

#include "src/obs/export.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/coherence/protocol.hh"

namespace isim::obs {

namespace {

/** Chrome process ids per track group (see export.hh). */
enum : unsigned { pidCpus = 1, pidTxns = 2, pidNoc = 3 };

unsigned
chromePid(EventKind kind)
{
    switch (eventKindCategory(kind)[0]) {
      case 't': // txn
        return pidTxns;
      case 'n': // noc
        return pidNoc;
      default:
        return pidCpus;
    }
}

std::uint64_t
chromeTid(const TraceEvent &e)
{
    // Transaction spans live on per-server tracks; everything else on
    // the emitting core / source node.
    return chromePid(e.kind) == pidTxns ? e.arg : e.cpu;
}

std::string
chromeName(const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::MissIssued:
      case EventKind::MissCompleted:
      case EventKind::DirRead:
      case EventKind::DirWrite:
      case EventKind::DirUpgrade: {
        std::string name = eventKindName(e.kind);
        name += ' ';
        name += missClassName(
            static_cast<MissClass>(e.cls & clsClassMask));
        if (e.cls & clsUpgrade)
            name += "/upg";
        if (e.cls & clsRacHit)
            name += "/rac";
        return name;
      }
      case EventKind::TxnBegin:
      case EventKind::TxnCommit:
        return std::string("txn pid") + std::to_string(e.arg);
      default:
        return eventKindName(e.kind);
    }
}

void
writeArgs(JsonWriter &w, const TraceEvent &e)
{
    w.key("args").beginObject();
    switch (eventKindCategory(e.kind)[0]) {
      case 'm': // mem
      case 'd': // dir
        w.kv("line", e.addr);
        w.kv("home", std::uint64_t{e.arg});
        w.kv("class",
             missClassName(static_cast<MissClass>(e.cls & clsClassMask)));
        break;
      case 'n': // noc
        w.kv("src", std::uint64_t{e.cpu});
        w.kv("dst", std::uint64_t{e.arg});
        w.kv("bytes", std::uint64_t{e.cls});
        break;
      case 'l': // latch
        w.kv("latch", std::uint64_t{e.arg});
        w.kv("addr", e.addr);
        break;
      case 't': // txn
        w.kv("pid", std::uint64_t{e.arg});
        w.kv("cpu", std::uint64_t{e.cpu});
        break;
      default: // os
        w.kv("next_pid", std::uint64_t{e.arg});
        break;
    }
    w.endObject();
}

void
writeMetadata(JsonWriter &w, unsigned pid, const char *name)
{
    w.beginObject()
        .kv("name", "process_name")
        .kv("ph", "M")
        .kv("pid", pid)
        .kv("tid", 0u);
    w.key("args").beginObject().kv("name", name).endObject();
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 std::uint64_t dropped)
{
    JsonWriter w(os, /*pretty_depth=*/2);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.kv("droppedEvents", dropped);
    w.key("traceEvents").beginArray();
    writeMetadata(w, pidCpus, "cpus");
    writeMetadata(w, pidTxns, "transactions");
    writeMetadata(w, pidNoc, "noc");
    for (const TraceEvent &e : events) {
        w.beginObject();
        w.kv("name", chromeName(e));
        w.kv("cat", eventKindCategory(e.kind));
        // ts/dur are microseconds in trace_event; ticks are ns.
        w.kv("ts", static_cast<double>(e.tick) / 1000.0, 3);
        if (e.dur > 0) {
            w.kv("ph", "X");
            w.kv("dur", static_cast<double>(e.dur) / 1000.0, 3);
        } else {
            w.kv("ph", "i");
            w.kv("s", "t");
        }
        w.kv("pid", chromePid(e.kind));
        w.kv("tid", chromeTid(e));
        writeArgs(w, e);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    std::vector<TraceEvent> events;
    events.reserve(tracer.ring().size());
    tracer.ring().forEach(
        [&](const TraceEvent &e) { events.push_back(e); });
    writeChromeTrace(os, events, tracer.ring().dropped());
}

const char *
timelineCsvHeader()
{
    return "epoch,start_ns,end_ns,commits,tps,instructions,busy_ns,"
           "idle_ns,kernel_ns,miss_instr_local,miss_instr_remote,"
           "miss_data_local,miss_data_2hop,miss_data_3hop,"
           "latch_acquires,latch_contended,ctx_switches,noc_msgs,"
           "noc_bytes,noc_gbps";
}

void
writeTimelineCsv(std::ostream &os, const TimelineSampler &sampler)
{
    os << timelineCsvHeader() << "\n";
    char buf[64];
    for (const EpochRow &row : sampler.rows()) {
        const CounterSnapshot &d = row.delta;
        const double dur = static_cast<double>(row.end - row.start);
        const double gbps =
            dur > 0 ? static_cast<double>(d.nocBytes) / dur : 0.0;
        os << row.epoch << ',' << row.start << ',' << row.end << ','
           << d.committedTxns << ',';
        std::snprintf(buf, sizeof(buf), "%.3f", row.tps());
        os << buf << ',' << d.instructions << ',' << d.busy << ','
           << d.idle << ',' << d.kernelTime << ',' << d.missInstrLocal
           << ',' << d.missInstrRemote << ',' << d.missDataLocal << ','
           << d.missDataRemoteClean << ',' << d.missDataRemoteDirty
           << ',' << d.latchAcquires << ',' << d.latchContended << ','
           << d.ctxSwitches << ',' << d.nocMsgs << ',' << d.nocBytes
           << ',';
        std::snprintf(buf, sizeof(buf), "%.6f", gbps);
        os << buf << "\n";
    }
}

void
writeEventCsv(std::ostream &os, const std::vector<TraceEvent> &events)
{
    os << "tick_ns,dur_ns,kind,cat,cpu,cls,arg,addr\n";
    for (const TraceEvent &e : events) {
        os << e.tick << ',' << e.dur << ',' << eventKindName(e.kind)
           << ',' << eventKindCategory(e.kind) << ',' << e.cpu << ','
           << unsigned{e.cls} << ',' << e.arg << ',' << e.addr << "\n";
    }
}

void
writeSummary(std::ostream &os, const std::vector<TraceEvent> &events,
             std::uint64_t dropped, std::size_t capacity)
{
    std::array<std::uint64_t, numEventKinds> counts{};
    Tick first = maxTick, last = 0;
    for (const TraceEvent &e : events) {
        ++counts[static_cast<std::size_t>(e.kind)];
        first = std::min(first, e.tick);
        last = std::max(last, e.tick + e.dur);
    }
    os << "events: " << events.size() << " (dropped " << dropped
       << ", ring capacity " << capacity << ")\n";
    if (dropped > 0) {
        // Through isim_warn, not the summary stream: with -o the
        // summary lands in a file, and a human piping it elsewhere
        // must still see the overflow (and --quiet can silence it).
        // The ring was full, so capacity + dropped is exactly how
        // many events were pushed; suggest the next power of two.
        std::size_t suggested = 1;
        while (suggested < capacity + dropped)
            suggested *= 2;
        isim_warn("trace ring overflowed: %llu events were lost "
                  "(ring capacity %zu); rerun with --trace-ring=%zu "
                  "to capture them all",
                  static_cast<unsigned long long>(dropped), capacity,
                  suggested);
    }
    if (!events.empty()) {
        os << "time range: [" << first << ", " << last << "] ns ("
           << static_cast<double>(last - first) / 1e6 << " ms)\n";
    }
    os << "per-kind counts:\n";
    for (unsigned k = 0; k < numEventKinds; ++k) {
        if (counts[k] == 0)
            continue;
        const EventKind kind = static_cast<EventKind>(k);
        char line[96];
        std::snprintf(line, sizeof(line), "  %-14s %-6s %12llu\n",
                      eventKindName(kind), eventKindCategory(kind),
                      static_cast<unsigned long long>(counts[k]));
        os << line;
    }
}

void
writeCapture(const std::string &path, const Tracer &tracer)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        isim_fatal("cannot open capture file '%s'", path.c_str());
    CaptureHeader h;
    h.magic = captureMagic;
    h.count = tracer.ring().size();
    h.pushed = tracer.ring().pushed();
    h.capacity = tracer.ring().capacity();
    if (std::fwrite(&h, sizeof(h), 1, f) != 1)
        isim_fatal("short write to '%s'", path.c_str());
    tracer.ring().forEach([&](const TraceEvent &e) {
        if (std::fwrite(&e, sizeof(e), 1, f) != 1)
            isim_fatal("short write to '%s'", path.c_str());
    });
    std::fclose(f);
}

bool
readCapture(const std::string &path, CaptureHeader &header,
            std::vector<TraceEvent> &events, std::string &err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        err = "cannot open '" + path + "'";
        return false;
    }
    if (std::fread(&header, sizeof(header), 1, f) != 1) {
        err = "truncated capture header";
        std::fclose(f);
        return false;
    }
    if (header.magic != captureMagic) {
        err = "not an itrace capture (bad magic)";
        std::fclose(f);
        return false;
    }
    events.clear();
    events.resize(header.count);
    if (header.count > 0 &&
        std::fread(events.data(), sizeof(TraceEvent), header.count, f) !=
            header.count) {
        err = "truncated capture body";
        std::fclose(f);
        return false;
    }
    std::fclose(f);
    return true;
}

} // namespace isim::obs
