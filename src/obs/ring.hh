/**
 * @file
 * Bounded event ring: a fixed-capacity buffer of TraceEvents that
 * overwrites its oldest entries when full, so a capture always holds
 * the *latest* window of activity regardless of run length. Capacity
 * accounting (pushed / dropped) is exact, so exporters can report how
 * much history was lost.
 */

#ifndef ISIM_OBS_RING_HH
#define ISIM_OBS_RING_HH

#include <cstddef>
#include <vector>

#include "src/base/logging.hh"
#include "src/obs/event.hh"

namespace isim::obs {

/** Overwrite-on-full ring buffer of TraceEvents. */
class EventRing
{
  public:
    explicit EventRing(std::size_t capacity) : buf_(capacity)
    {
        isim_assert(capacity > 0, "event ring needs capacity");
    }

    void push(const TraceEvent &e)
    {
        buf_[head_] = e;
        head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
        ++pushed_;
    }

    std::size_t capacity() const { return buf_.size(); }
    /** Events currently retained. */
    std::size_t size() const
    {
        return pushed_ < buf_.size()
                   ? static_cast<std::size_t>(pushed_)
                   : buf_.size();
    }
    /** Total events ever pushed. */
    std::uint64_t pushed() const { return pushed_; }
    /** Events lost to overwriting. */
    std::uint64_t dropped() const { return pushed_ - size(); }

    void clear()
    {
        head_ = 0;
        pushed_ = 0;
    }

    /** Visit retained events oldest to newest. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        // Oldest retained event: head_ when wrapped, 0 otherwise.
        std::size_t i = pushed_ > buf_.size() ? head_ : 0;
        for (std::size_t k = 0; k < n; ++k) {
            fn(buf_[i]);
            i = i + 1 == buf_.size() ? 0 : i + 1;
        }
    }

  private:
    std::vector<TraceEvent> buf_;
    std::size_t head_ = 0; //!< next write position
    std::uint64_t pushed_ = 0;
};

} // namespace isim::obs

#endif // ISIM_OBS_RING_HH
