/**
 * @file
 * The event tracer: a ring of TraceEvents plus a runtime enable flag
 * and a "current simulated time" clock maintained by the simulation
 * loop, so emitters that do not carry a timestamp (latch emission,
 * process-level events) can still stamp events correctly.
 *
 * Cost discipline: every emission site in simulator code is guarded
 * by ISIM_OBS_ACTIVE(tracer), which compiles to `false` when the tree
 * is built with -DISIM_OBS=OFF and to a single `ptr != nullptr &&
 * enabled` check otherwise — the tracing-off hot path is one
 * predictable branch and no argument evaluation.
 */

#ifndef ISIM_OBS_TRACER_HH
#define ISIM_OBS_TRACER_HH

#include <array>

#include "src/obs/ring.hh"

namespace isim::obs {

/**
 * Emission guard. Use as `if (ISIM_OBS_ACTIVE(tracer_)) { ... }` so
 * the event-construction code inside the block is never executed (and
 * under ISIM_OBS=OFF builds, constant-folded away) when tracing is
 * off.
 */
#ifdef ISIM_OBS
#define ISIM_OBS_ACTIVE(tracer) \
    ((tracer) != nullptr && (tracer)->enabled())
#else
#define ISIM_OBS_ACTIVE(tracer) ((void)(tracer), false)
#endif

/** Records typed events into a bounded ring. */
class Tracer
{
  public:
    explicit Tracer(std::size_t ring_capacity) : ring_(ring_capacity)
    {
        counts_.fill(0);
    }

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    // ---- Clock (maintained by the simulation loop) ----
    void setClock(NodeId cpu, Tick now)
    {
        clockCpu_ = cpu;
        clockNow_ = now;
    }
    Tick now() const { return clockNow_; }
    NodeId clockCpu() const { return clockCpu_; }

    // ---- Emission ----
    void record(EventKind kind, Tick tick, Tick dur, std::uint16_t cpu,
                std::uint8_t cls, std::uint32_t arg, Addr addr)
    {
        TraceEvent e;
        e.tick = tick;
        e.dur = dur;
        e.addr = addr;
        e.arg = arg;
        e.cpu = cpu;
        e.kind = kind;
        e.cls = cls;
        ring_.push(e);
        ++counts_[static_cast<std::size_t>(kind)];
    }

    /** Instant event at an explicit time. */
    void instant(EventKind kind, Tick tick, std::uint16_t cpu,
                 std::uint8_t cls = 0, std::uint32_t arg = 0,
                 Addr addr = 0)
    {
        record(kind, tick, 0, cpu, cls, arg, addr);
    }

    /** Span event [tick, tick + dur). */
    void span(EventKind kind, Tick tick, Tick dur, std::uint16_t cpu,
              std::uint8_t cls = 0, std::uint32_t arg = 0, Addr addr = 0)
    {
        record(kind, tick, dur, cpu, cls, arg, addr);
    }

    /** Instant event stamped with the loop-maintained clock. */
    void instantNow(EventKind kind, std::uint8_t cls = 0,
                    std::uint32_t arg = 0, Addr addr = 0)
    {
        record(kind, clockNow_, 0,
               static_cast<std::uint16_t>(clockCpu_), cls, arg, addr);
    }

    /** NoC message hop; also accumulates the byte counter. */
    void nocHop(EventKind kind, Tick tick, NodeId src, NodeId dst,
                unsigned bytes, Addr addr)
    {
        record(kind, tick, 0, static_cast<std::uint16_t>(src),
               static_cast<std::uint8_t>(bytes), dst, addr);
        if (kind == EventKind::NocEnqueue)
            nocBytes_ += bytes;
    }

    // ---- Accounting ----
    const EventRing &ring() const { return ring_; }
    std::uint64_t count(EventKind kind) const
    {
        return counts_[static_cast<std::size_t>(kind)];
    }
    /** Payload bytes handed to the interconnect (all messages). */
    std::uint64_t nocBytes() const { return nocBytes_; }

    void clear()
    {
        ring_.clear();
        counts_.fill(0);
        nocBytes_ = 0;
    }

  private:
    EventRing ring_;
    std::array<std::uint64_t, numEventKinds> counts_;
    std::uint64_t nocBytes_ = 0;
    Tick clockNow_ = 0;
    NodeId clockCpu_ = 0;
    bool enabled_ = false;
};

} // namespace isim::obs

#endif // ISIM_OBS_TRACER_HH
