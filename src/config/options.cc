/**
 * @file
 * Configuration parsing and the MachineConfig mapping.
 */

#include "src/config/options.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/base/logging.hh"

namespace isim {

namespace {

std::string
trim(const std::string &text)
{
    std::size_t b = 0, e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
lower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

} // namespace

std::uint64_t
parseSize(const std::string &text)
{
    const std::string t = trim(text);
    if (t.empty())
        isim_fatal("empty size value");
    std::uint64_t scale = 1;
    std::string digits = t;
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(
            t.back())));
    if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
        scale = suffix == 'K' ? kib : suffix == 'M' ? mib : gib;
        digits = t.substr(0, t.size() - 1);
    }
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
        isim_fatal("malformed size value '%s'", text.c_str());
    }
    return std::stoull(digits) * scale;
}

KvConfig
KvConfig::fromString(const std::string &text)
{
    KvConfig kv;
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;
        const std::size_t eq = stripped.find('=');
        if (eq == std::string::npos) {
            isim_fatal("config line %d: expected 'key = value', got "
                       "'%s'",
                       line_no, stripped.c_str());
        }
        const std::string key = lower(trim(stripped.substr(0, eq)));
        const std::string value = trim(stripped.substr(eq + 1));
        if (key.empty() || value.empty()) {
            isim_fatal("config line %d: empty key or value", line_no);
        }
        if (!kv.map_.emplace(key, value).second)
            isim_fatal("config line %d: duplicate key '%s'", line_no,
                       key.c_str());
    }
    return kv;
}

KvConfig
KvConfig::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        isim_fatal("cannot read config file: %s", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromString(buffer.str());
}

bool
KvConfig::has(const std::string &key) const
{
    return map_.count(key) != 0;
}

const std::string &
KvConfig::get(const std::string &key) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        isim_fatal("missing config key '%s'", key.c_str());
    markRead(key);
    return it->second;
}

std::string
KvConfig::getOr(const std::string &key,
                const std::string &fallback) const
{
    markRead(key);
    auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second;
}

std::uint64_t
KvConfig::getUint(const std::string &key, std::uint64_t fallback) const
{
    markRead(key);
    auto it = map_.find(key);
    if (it == map_.end())
        return fallback;
    const std::string &v = it->second;
    if (v.find_first_not_of("0123456789") != std::string::npos)
        isim_fatal("config key '%s': expected integer, got '%s'",
                   key.c_str(), v.c_str());
    return std::stoull(v);
}

double
KvConfig::getDouble(const std::string &key, double fallback) const
{
    markRead(key);
    auto it = map_.find(key);
    if (it == map_.end())
        return fallback;
    try {
        std::size_t pos = 0;
        const double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        isim_fatal("config key '%s': expected number, got '%s'",
                   key.c_str(), it->second.c_str());
    }
}

bool
KvConfig::getBool(const std::string &key, bool fallback) const
{
    markRead(key);
    auto it = map_.find(key);
    if (it == map_.end())
        return fallback;
    const std::string v = lower(it->second);
    if (v == "true" || v == "yes" || v == "on" || v == "1")
        return true;
    if (v == "false" || v == "no" || v == "off" || v == "0")
        return false;
    isim_fatal("config key '%s': expected boolean, got '%s'",
               key.c_str(), it->second.c_str());
}

std::uint64_t
KvConfig::getSize(const std::string &key, std::uint64_t fallback) const
{
    markRead(key);
    auto it = map_.find(key);
    return it == map_.end() ? fallback : parseSize(it->second);
}

void
KvConfig::markRead(const std::string &key) const
{
    read_[key] = true;
}

std::string
KvConfig::firstUnread() const
{
    for (const auto &[key, value] : map_) {
        if (!read_.count(key))
            return key;
    }
    return "";
}

namespace {

IntegrationLevel
levelFromName(const std::string &name)
{
    const std::string n = lower(name);
    if (n == "conservative" || n == "cons")
        return IntegrationLevel::ConservativeBase;
    if (n == "base")
        return IntegrationLevel::Base;
    if (n == "l2")
        return IntegrationLevel::L2Int;
    if (n == "l2mc" || n == "l2+mc")
        return IntegrationLevel::L2McInt;
    if (n == "full" || n == "all")
        return IntegrationLevel::FullInt;
    isim_fatal("unknown integration level '%s' (want conservative | "
               "base | l2 | l2mc | full)",
               name.c_str());
}

L2Impl
implFromName(const std::string &name)
{
    const std::string n = lower(name);
    if (n == "offchip-direct" || n == "offchip-dm")
        return L2Impl::OffchipDirect;
    if (n == "offchip-assoc")
        return L2Impl::OffchipAssoc;
    if (n == "sram" || n == "onchip-sram")
        return L2Impl::OnchipSram;
    if (n == "dram" || n == "onchip-dram")
        return L2Impl::OnchipDram;
    isim_fatal("unknown L2 implementation '%s' (want offchip-direct | "
               "offchip-assoc | sram | dram)",
               name.c_str());
}

const char *
levelName(IntegrationLevel level)
{
    switch (level) {
      case IntegrationLevel::ConservativeBase:
        return "conservative";
      case IntegrationLevel::Base:
        return "base";
      case IntegrationLevel::L2Int:
        return "l2";
      case IntegrationLevel::L2McInt:
        return "l2mc";
      case IntegrationLevel::FullInt:
        return "full";
    }
    return "?";
}

const char *
implName(L2Impl impl)
{
    switch (impl) {
      case L2Impl::OffchipDirect:
        return "offchip-direct";
      case L2Impl::OffchipAssoc:
        return "offchip-assoc";
      case L2Impl::OnchipSram:
        return "sram";
      case L2Impl::OnchipDram:
        return "dram";
    }
    return "?";
}

} // namespace

MachineConfig
machineFromConfig(const KvConfig &kv)
{
    MachineConfig cfg;
    cfg.name = kv.getOr("machine.name", "from-config");
    cfg.numCpus = static_cast<unsigned>(
        kv.getUint("machine.cpus", cfg.numCpus));
    cfg.coresPerNode = static_cast<unsigned>(
        kv.getUint("machine.cores_per_node", cfg.coresPerNode));

    const std::string model =
        lower(kv.getOr("machine.cpu_model", "inorder"));
    if (model == "inorder" || model == "in-order") {
        cfg.cpuModel = CpuModel::InOrder;
    } else if (model == "ooo" || model == "out-of-order") {
        cfg.cpuModel = CpuModel::OutOfOrder;
    } else {
        isim_fatal("unknown cpu model '%s' (want inorder | ooo)",
                   model.c_str());
    }
    cfg.oooParams.width = static_cast<unsigned>(
        kv.getUint("ooo.width", cfg.oooParams.width));
    cfg.oooParams.window = static_cast<unsigned>(
        kv.getUint("ooo.window", cfg.oooParams.window));
    cfg.oooParams.lsPorts = static_cast<unsigned>(
        kv.getUint("ooo.ls_ports", cfg.oooParams.lsPorts));
    cfg.oooParams.mispredictEveryInstrs =
        kv.getDouble("ooo.mispredict_every",
                     cfg.oooParams.mispredictEveryInstrs);

    if (kv.has("machine.level"))
        cfg.level = levelFromName(kv.get("machine.level"));
    if (kv.has("machine.l2.impl"))
        cfg.l2Impl = implFromName(kv.get("machine.l2.impl"));
    cfg.l2.sizeBytes = kv.getSize("machine.l2.size", cfg.l2.sizeBytes);
    cfg.l2.assoc = static_cast<unsigned>(
        kv.getUint("machine.l2.assoc", cfg.l2.assoc));

    cfg.rac = kv.getBool("machine.rac.enabled", cfg.rac);
    cfg.racGeom.sizeBytes =
        kv.getSize("machine.rac.size", cfg.racGeom.sizeBytes);
    cfg.racGeom.assoc = static_cast<unsigned>(
        kv.getUint("machine.rac.assoc", cfg.racGeom.assoc));
    cfg.replicateCode =
        kv.getBool("machine.replicate_code", cfg.replicateCode);
    cfg.victimBufferEntries = static_cast<unsigned>(
        kv.getUint("machine.victim_buffer", cfg.victimBufferEntries));
    cfg.prefetchDegree = static_cast<unsigned>(
        kv.getUint("machine.prefetch_degree", cfg.prefetchDegree));
    cfg.mcOccupancy =
        kv.getUint("machine.mc_occupancy", cfg.mcOccupancy);
    cfg.pageColors = static_cast<unsigned>(
        kv.getUint("machine.page_colors", cfg.pageColors));

    WorkloadParams &w = cfg.workload;
    const std::string kind = lower(kv.getOr("workload.kind", "tpcb"));
    if (kind == "tpcb" || kind == "oltp") {
        w.kind = WorkloadKind::TpcB;
    } else if (kind == "dss" || kind == "dss-scan") {
        w.kind = WorkloadKind::DssScan;
    } else {
        isim_fatal("unknown workload kind '%s' (want tpcb | dss)",
                   kind.c_str());
    }
    w.dssStreamsPerCpu = static_cast<unsigned>(
        kv.getUint("workload.dss_streams_per_cpu", w.dssStreamsPerCpu));
    w.dssBlocksPerQuery =
        kv.getUint("workload.dss_blocks_per_query", w.dssBlocksPerQuery);
    w.transactions = kv.getUint("workload.transactions", w.transactions);
    w.warmupTransactions =
        kv.getUint("workload.warmup", w.warmupTransactions);
    w.branches = static_cast<unsigned>(
        kv.getUint("workload.branches", w.branches));
    w.accountsPerBranch = static_cast<unsigned>(
        kv.getUint("workload.accounts_per_branch", w.accountsPerBranch));
    w.serversPerCpu = static_cast<unsigned>(
        kv.getUint("workload.servers_per_cpu", w.serversPerCpu));
    w.blockBufferBytes =
        kv.getSize("workload.block_buffer", w.blockBufferBytes);
    w.seed = kv.getUint("workload.seed", w.seed);
    w.logWriteLatency =
        kv.getUint("workload.log_write_latency", w.logWriteLatency);
    w.clientThinkTime =
        kv.getUint("workload.think_time", w.clientThinkTime);

    const std::string unread = kv.firstUnread();
    if (!unread.empty())
        isim_fatal("unknown config key '%s'", unread.c_str());

    if (!validCombination(cfg.level, cfg.l2Impl)) {
        isim_fatal("config: %s cannot use a %s L2",
                   integrationLevelName(cfg.level),
                   l2ImplName(cfg.l2Impl));
    }
    return cfg;
}

std::string
machineToConfigText(const MachineConfig &cfg)
{
    std::ostringstream os;
    os << "# IntegraSim machine configuration\n";
    os << "machine.name = " << cfg.name << "\n";
    os << "machine.cpus = " << cfg.numCpus << "\n";
    os << "machine.cores_per_node = " << cfg.coresPerNode << "\n";
    os << "machine.cpu_model = "
       << (cfg.cpuModel == CpuModel::InOrder ? "inorder" : "ooo")
       << "\n";
    os << "machine.level = " << levelName(cfg.level) << "\n";
    os << "machine.l2.impl = " << implName(cfg.l2Impl) << "\n";
    os << "machine.l2.size = " << cfg.l2.sizeBytes / kib << "K\n";
    os << "machine.l2.assoc = " << cfg.l2.assoc << "\n";
    os << "machine.rac.enabled = " << (cfg.rac ? "true" : "false")
       << "\n";
    os << "machine.rac.size = " << cfg.racGeom.sizeBytes / kib << "K\n";
    os << "machine.rac.assoc = " << cfg.racGeom.assoc << "\n";
    os << "machine.replicate_code = "
       << (cfg.replicateCode ? "true" : "false") << "\n";
    os << "machine.victim_buffer = " << cfg.victimBufferEntries << "\n";
    os << "machine.prefetch_degree = " << cfg.prefetchDegree << "\n";
    os << "machine.mc_occupancy = " << cfg.mcOccupancy << "\n";
    os << "machine.page_colors = " << cfg.pageColors << "\n";
    os << "workload.kind = "
       << (cfg.workload.kind == WorkloadKind::TpcB ? "tpcb" : "dss")
       << "\n";
    os << "workload.transactions = " << cfg.workload.transactions
       << "\n";
    os << "workload.warmup = " << cfg.workload.warmupTransactions
       << "\n";
    os << "workload.branches = " << cfg.workload.branches << "\n";
    os << "workload.servers_per_cpu = " << cfg.workload.serversPerCpu
       << "\n";
    os << "workload.seed = " << cfg.workload.seed << "\n";
    return os.str();
}

namespace {

/** `--flag=value` matcher: fills `value` when `arg` starts the flag. */
bool
flagValue(const char *arg, const char *flag, std::string &value)
{
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=')
        return false;
    value = arg + n + 1;
    if (value.empty())
        isim_fatal("%s needs a value", flag);
    return true;
}

std::uint64_t
parseUintFlag(const char *flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        isim_fatal("%s: expected an integer, got '%s'", flag,
                   text.c_str());
    return v;
}

} // namespace

const char *
obsOptionsHelp()
{
    return "  --trace-out=FILE     write a Chrome trace_event JSON "
           "trace (Perfetto)\n"
           "  --trace-bin=FILE     write a binary capture for "
           "tools/itrace\n"
           "  --timeline-out=FILE  write the epoch timeline CSV\n"
           "  --epoch=TICKS        sampler epoch in simulated ns "
           "(default 1000000)\n"
           "  --trace-ring=N       event-ring capacity in events "
           "(default 262144)\n"
           "  --trace-bar=N        figure bar to observe (default 0)\n";
}

obs::ObsConfig
obsFromCommandLine(int &argc, char **argv)
{
    obs::ObsConfig cfg;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        char *arg = argv[i];
        std::string v;
        if (flagValue(arg, "--trace-out", v)) {
            cfg.traceOutPath = v;
        } else if (flagValue(arg, "--trace-bin", v)) {
            cfg.traceBinPath = v;
        } else if (flagValue(arg, "--timeline-out", v)) {
            cfg.timelineOutPath = v;
        } else if (flagValue(arg, "--epoch", v)) {
            cfg.epochTicks = parseUintFlag("--epoch", v);
            if (cfg.epochTicks == 0)
                isim_fatal("--epoch must be positive");
        } else if (flagValue(arg, "--trace-ring", v)) {
            cfg.ringCapacity = parseUintFlag("--trace-ring", v);
            if (cfg.ringCapacity == 0)
                isim_fatal("--trace-ring must be positive");
        } else if (flagValue(arg, "--trace-bar", v)) {
            cfg.traceBar = parseUintFlag("--trace-bar", v);
        } else {
            argv[out++] = arg; // not ours: keep it
        }
    }
    argc = out;
    return cfg;
}

} // namespace isim
