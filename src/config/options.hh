/**
 * @file
 * Plain-text configuration: a small `key = value` format (comments
 * with '#', dotted keys) and the mapping onto MachineConfig /
 * WorkloadParams, so experiments can be described in files instead of
 * C++ (see examples/run_config and examples/configs/).
 */

#ifndef ISIM_CONFIG_OPTIONS_HH
#define ISIM_CONFIG_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>

#include "src/core/machine.hh"
#include "src/obs/observability.hh"

namespace isim {

/**
 * Parsed key/value configuration. Keys are dotted lowercase paths
 * ("machine.l2.size"); values are uninterpreted strings until read.
 */
class KvConfig
{
  public:
    KvConfig() = default;

    /** Parse from text; fatal() on malformed lines. */
    static KvConfig fromString(const std::string &text);
    /** Parse a file; fatal() if it cannot be read. */
    static KvConfig fromFile(const std::string &path);

    bool has(const std::string &key) const;
    /** Raw value; fatal() if missing. */
    const std::string &get(const std::string &key) const;
    std::string getOr(const std::string &key,
                      const std::string &fallback) const;

    /** Typed readers (fatal() on malformed values). */
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    /** Size with suffix: "64", "32K", "2M", "1G". */
    std::uint64_t getSize(const std::string &key,
                          std::uint64_t fallback) const;

    const std::map<std::string, std::string> &entries() const
    {
        return map_;
    }

    /** Keys read so far (for unknown-key detection). */
    void markRead(const std::string &key) const;
    /** First entry never read by a getter; empty if none. */
    std::string firstUnread() const;

  private:
    std::map<std::string, std::string> map_;
    mutable std::map<std::string, bool> read_;
};

/** Parse "64" / "32K" / "2M" / "1G" into bytes; fatal() on junk. */
std::uint64_t parseSize(const std::string &text);

/**
 * Build a full machine configuration from a KvConfig. Unknown keys
 * are fatal (they are invariably typos). See examples/configs/ for
 * the key reference.
 */
MachineConfig machineFromConfig(const KvConfig &kv);

/** Render a MachineConfig back to config text (round-trippable). */
std::string machineToConfigText(const MachineConfig &config);

/**
 * Parse the observability flags every figure binary accepts out of
 * argv, consuming the recognized ones (argc/argv are rewritten so
 * remaining arguments keep their order):
 *
 *   --trace-out=FILE     write a Chrome trace_event JSON trace
 *   --trace-bin=FILE     write a binary capture for tools/itrace
 *   --timeline-out=FILE  write the epoch timeline CSV
 *   --epoch=TICKS        sampler epoch in simulated ns
 *   --trace-ring=N       event-ring capacity (events, power of two
 *                        not required)
 *   --trace-bar=N        which bar of the figure to observe
 *
 * fatal() on a malformed value. `--help`/`-h` prints usage (including
 * obsOptionsHelp()) and exits.
 */
obs::ObsConfig obsFromCommandLine(int &argc, char **argv);

/** One-per-line description of the observability flags. */
const char *obsOptionsHelp();

} // namespace isim

#endif // ISIM_CONFIG_OPTIONS_HH
