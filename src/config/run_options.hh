/**
 * @file
 * RunOptions: everything that varies between invocations of the same
 * experiment — transaction counts, seeding, JSON output, parallelism,
 * audit decimation, observability capture — resolved exactly once at
 * startup. The environment (ISIM_*) is read in RunOptions::fromEnv()
 * and nowhere else, so worker threads of the parallel experiment
 * engine never call getenv(); command-line flags take precedence over
 * the environment (RunOptions::fromCommandLine).
 */

#ifndef ISIM_CONFIG_RUN_OPTIONS_HH
#define ISIM_CONFIG_RUN_OPTIONS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/exec_mode.hh"
#include "src/obs/observability.hh"
#include "src/oltp/workload_params.hh"
#include "src/sample/spec.hh"

namespace isim {

/** Options of one experiment invocation (not of one machine). */
struct RunOptions
{
    /** Measured-transaction override (unset: the spec's own count). */
    std::optional<std::uint64_t> txns;
    /** Warm-up-transaction override. */
    std::optional<std::uint64_t> warmup;
    /** Workload seed override (applies to every bar of a figure). */
    std::optional<std::uint64_t> seed;
    /** Directory figure JSON is written into ("" = don't write). */
    std::string jsonDir;
    /**
     * Worker threads for multi-bar figures and sweeps. 0 = one per
     * hardware thread (std::thread::hardware_concurrency).
     */
    unsigned jobs = 0;
    /**
     * Worker *processes* for campaign runs (isim-campaign only; the
     * single-process tools ignore it). 1 = run bars in-process.
     */
    unsigned procs = 1;
    /** Full-audit decimation period of the invariant auditor. */
    std::uint64_t auditPeriod = std::uint64_t{1} << 20;
    /** Per-run progress lines on stderr. */
    bool verbose = true;
    /**
     * Stats-manifest path override. "" = default: next to the figure
     * JSON as `<stem>.stats.json` (which requires jsonDir). A figure
     * run always produces a manifest when either is set.
     */
    std::string statsOut;
    /**
     * Embed per-epoch counter rows in the manifest, sampled on this
     * tick grid (0 = off). Runs the timeline sampler on EVERY bar —
     * unlike the timeline CSV, which observes a single bar.
     */
    Tick statsEpochTicks = 0;
    /** What to capture and where (one observed bar per figure). */
    obs::ObsConfig obs;
    /**
     * Directory warm checkpoints are written into after each bar's
     * warm-up ("" = off). One image per machine, named
     * `<slug(config.name)>.ckpt`; see docs/CHECKPOINT.md.
     */
    std::string saveCkptDir;
    /**
     * Directory warm checkpoints are restored from ("" = off). Each
     * bar skips its warm-up and measures from the image; the image's
     * embedded configuration must match the bar's exactly.
     */
    std::string fromCkptDir;
    /**
     * Warm-up execution-mode override (docs/EXECMODE.md). Unset: the
     * figure spec's default (effectiveWarmupMode). With --from-ckpt,
     * this is also the mode the restored image must have been warmed
     * in — restoring an atomic image into a timing-warm-up run is
     * fatal unless --warmup-mode atomic is given.
     */
    std::optional<ExecMode> warmupMode;
    /** Measurement execution-mode override. Unset: Timing. */
    std::optional<ExecMode> execMode;
    /**
     * Host-profile output path ("" = off). Setting it runtime-enables
     * the self-profiler and writes a schema-versioned prof.json there
     * (docs/PROFILING.md). In a build without -DISIM_PROF=ON the file
     * is still written, as a valid `"enabled": false` stub. Host
     * profile data never enters stats.json or figure JSON.
     */
    std::string profOut;
    /**
     * Sampled-simulation axis (docs/SAMPLING.md): off unless
     * --sample-measure is given. Applies to every bar of the run;
     * sampled and exact cells never alias in the campaign cache
     * (the spec participates in the result key).
     */
    sample::SampleSpec sample;

    /** The warm-up mode a bar actually runs (override, else spec). */
    ExecMode effectiveWarmupMode(ExecMode spec_default) const
    {
        return warmupMode.value_or(spec_default);
    }
    /** The measurement mode (override, else the paper's Timing). */
    ExecMode effectiveExecMode() const
    {
        return execMode.value_or(ExecMode::Timing);
    }

    /**
     * Resolve the environment: ISIM_TXNS, ISIM_WARMUP, ISIM_SEED,
     * ISIM_JSON_DIR, ISIM_JOBS, ISIM_PROCS, ISIM_AUDIT_PERIOD,
     * ISIM_STATS_OUT,
     * ISIM_STATS_EPOCH, ISIM_SAVE_CKPT, ISIM_FROM_CKPT,
     * ISIM_WARMUP_MODE, ISIM_EXEC_MODE, ISIM_PROF_OUT,
     * ISIM_SAMPLE_FF, ISIM_SAMPLE_MEASURE, ISIM_SAMPLE_WINDOWS,
     * ISIM_SAMPLE_WARM, ISIM_SAMPLE_MODE. Malformed
     * values are ignored (the variables are convenience overrides,
     * often set globally in CI). This is the only getenv() site in
     * the tree.
     */
    static RunOptions fromEnv();

    /**
     * fromEnv(), then the command line on top of it. Consumes the
     * recognized flags out of argv (argc/argv are rewritten, order of
     * the rest preserved):
     *
     *   --txns N / --txns=N      measured transactions (> 0)
     *   --warmup N               warm-up transactions
     *   --seed N                 workload seed for every bar
     *   --json-dir DIR           write figure JSON into DIR
     *   --jobs N                 worker threads (0 = one per core)
     *   --procs N                worker processes (campaign runs, >= 1)
     *   --audit-period N         invariant full-audit period (>= 1)
     *   --stats-out FILE         write the stats manifest to FILE
     *   --stats-epoch TICKS      embed per-epoch rows on this grid
     *   --save-ckpt DIR          save a warm checkpoint per bar
     *   --from-ckpt DIR          restore warm checkpoints (skip warm-up)
     *   --warmup-mode atomic|timing  warm-up execution mode
     *   --exec-mode atomic|timing    measurement execution mode
     *   --prof-out FILE          write the host self-profile to FILE
     *   --sample-ff N            fast-forward N txns per sampling period
     *   --sample-measure N       measure M txns per window (enables
     *                            sampling; docs/SAMPLING.md)
     *   --sample-windows N       window count (default: derived)
     *   --sample-warm N          atomic-warm txns before each window
     *                            (default: min(ff, measure))
     *   --sample-mode fixed|random  window placement within the period
     *   --quiet                  suppress per-run progress lines
     *
     * plus the observability flags (obsFromCommandLine). Flags
     * fatal() on malformed values; a flag always wins over its
     * environment fallback.
     */
    static RunOptions fromCommandLine(int &argc, char **argv);

    /** Apply the workload overrides (txns / warmup / seed). */
    void applyTo(WorkloadParams &params) const;

    /**
     * Install the process-wide knobs (the invariant-audit period,
     * quiet mode, and the self-profiler enable). Call once from
     * main(), before machines run.
     */
    void applyGlobal() const;

    /** Worker threads to actually start for `items` work items. */
    unsigned effectiveJobs(std::size_t items) const;
};

/** One-per-line description of the run flags (for usage text). */
const char *runOptionsHelp();

} // namespace isim

#endif // ISIM_CONFIG_RUN_OPTIONS_HH
