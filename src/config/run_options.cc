/**
 * @file
 * RunOptions resolution: the environment (once), then flags.
 */

#include "src/config/run_options.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/base/logging.hh"
#include "src/config/options.hh"
#include "src/prof/profiler.hh"
#include "src/verify/invariants.hh"

namespace isim {

namespace {

/** Strict uint parse; nullopt on garbage (env values are lenient). */
std::optional<std::uint64_t>
parseUint(const char *text)
{
    if (!text || !*text)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-')
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

/** Like parseUint but fatal(): flag values must be well-formed. */
std::uint64_t
parseUintOrDie(const char *flag, const std::string &text)
{
    const std::optional<std::uint64_t> v = parseUint(text.c_str());
    if (!v)
        isim_fatal("%s: expected an unsigned integer, got '%s'", flag,
                   text.c_str());
    return *v;
}

/** Like execModeFromName but fatal(): flag values must be valid. */
ExecMode
parseExecModeOrDie(const char *flag, const std::string &text)
{
    const std::optional<ExecMode> m = execModeFromName(text);
    if (!m)
        isim_fatal("%s: expected 'atomic' or 'timing', got '%s'", flag,
                   text.c_str());
    return *m;
}

} // namespace

RunOptions
RunOptions::fromEnv()
{
    RunOptions opts;
    if (const auto v = parseUint(std::getenv("ISIM_TXNS"));
        v && *v > 0) {
        opts.txns = *v;
    }
    if (const auto v = parseUint(std::getenv("ISIM_WARMUP")))
        opts.warmup = *v;
    if (const auto v = parseUint(std::getenv("ISIM_SEED")))
        opts.seed = *v;
    if (const char *dir = std::getenv("ISIM_JSON_DIR"))
        opts.jsonDir = dir;
    if (const auto v = parseUint(std::getenv("ISIM_JOBS")))
        opts.jobs = static_cast<unsigned>(*v);
    if (const auto v = parseUint(std::getenv("ISIM_PROCS"));
        v && *v >= 1) {
        opts.procs = static_cast<unsigned>(*v);
    }
    if (const auto v = parseUint(std::getenv("ISIM_AUDIT_PERIOD"));
        v && *v >= 1) {
        opts.auditPeriod = *v;
    }
    if (const char *path = std::getenv("ISIM_STATS_OUT"))
        opts.statsOut = path;
    if (const auto v = parseUint(std::getenv("ISIM_STATS_EPOCH")))
        opts.statsEpochTicks = *v;
    if (const char *dir = std::getenv("ISIM_SAVE_CKPT"))
        opts.saveCkptDir = dir;
    if (const char *dir = std::getenv("ISIM_FROM_CKPT"))
        opts.fromCkptDir = dir;
    if (const char *mode = std::getenv("ISIM_WARMUP_MODE")) {
        if (const auto m = execModeFromName(mode))
            opts.warmupMode = *m;
    }
    if (const char *mode = std::getenv("ISIM_EXEC_MODE")) {
        if (const auto m = execModeFromName(mode))
            opts.execMode = *m;
    }
    if (const char *path = std::getenv("ISIM_PROF_OUT"))
        opts.profOut = path;
    if (const auto v = parseUint(std::getenv("ISIM_SAMPLE_FF")))
        opts.sample.ff = *v;
    if (const auto v = parseUint(std::getenv("ISIM_SAMPLE_MEASURE")))
        opts.sample.measure = *v;
    if (const auto v = parseUint(std::getenv("ISIM_SAMPLE_WINDOWS")))
        opts.sample.windows = *v;
    if (const auto v = parseUint(std::getenv("ISIM_SAMPLE_WARM")))
        opts.sample.warm = *v;
    if (const char *mode = std::getenv("ISIM_SAMPLE_MODE")) {
        if (const auto m = sample::sampleModeFromName(mode))
            opts.sample.mode = *m;
    }
    return opts;
}

RunOptions
RunOptions::fromCommandLine(int &argc, char **argv)
{
    RunOptions opts = fromEnv();
    opts.obs = obsFromCommandLine(argc, argv);

    // `--flag=value` or `--flag value`; consumed arguments are
    // dropped so the caller sees only what is left.
    int out = 1;
    std::string value;
    const auto matches = [&](int &i, const char *flag) -> bool {
        const char *arg = argv[i];
        const std::size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) != 0)
            return false;
        if (arg[n] == '=') {
            value = arg + n + 1;
            if (value.empty())
                isim_fatal("%s needs a value", flag);
            return true;
        }
        if (arg[n] != '\0')
            return false;
        if (i + 1 >= argc)
            isim_fatal("%s needs a value", flag);
        value = argv[++i];
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        if (matches(i, "--txns")) {
            const std::uint64_t v = parseUintOrDie("--txns", value);
            if (v == 0)
                isim_fatal("--txns must be positive");
            opts.txns = v;
        } else if (matches(i, "--warmup")) {
            opts.warmup = parseUintOrDie("--warmup", value);
        } else if (matches(i, "--seed")) {
            opts.seed = parseUintOrDie("--seed", value);
        } else if (matches(i, "--json-dir")) {
            opts.jsonDir = value;
        } else if (matches(i, "--jobs")) {
            opts.jobs =
                static_cast<unsigned>(parseUintOrDie("--jobs", value));
        } else if (matches(i, "--procs")) {
            const std::uint64_t v = parseUintOrDie("--procs", value);
            if (v == 0)
                isim_fatal("--procs must be >= 1");
            opts.procs = static_cast<unsigned>(v);
        } else if (matches(i, "--audit-period")) {
            const std::uint64_t v =
                parseUintOrDie("--audit-period", value);
            if (v == 0)
                isim_fatal("--audit-period must be >= 1");
            opts.auditPeriod = v;
        } else if (matches(i, "--stats-out")) {
            opts.statsOut = value;
        } else if (matches(i, "--stats-epoch")) {
            opts.statsEpochTicks =
                parseUintOrDie("--stats-epoch", value);
        } else if (matches(i, "--save-ckpt")) {
            opts.saveCkptDir = value;
        } else if (matches(i, "--from-ckpt")) {
            opts.fromCkptDir = value;
        } else if (matches(i, "--warmup-mode")) {
            opts.warmupMode = parseExecModeOrDie("--warmup-mode", value);
        } else if (matches(i, "--exec-mode")) {
            opts.execMode = parseExecModeOrDie("--exec-mode", value);
        } else if (matches(i, "--prof-out")) {
            opts.profOut = value;
        } else if (matches(i, "--sample-ff")) {
            opts.sample.ff = parseUintOrDie("--sample-ff", value);
        } else if (matches(i, "--sample-measure")) {
            opts.sample.measure =
                parseUintOrDie("--sample-measure", value);
        } else if (matches(i, "--sample-windows")) {
            opts.sample.windows =
                parseUintOrDie("--sample-windows", value);
        } else if (matches(i, "--sample-warm")) {
            opts.sample.warm = parseUintOrDie("--sample-warm", value);
        } else if (matches(i, "--sample-mode")) {
            const auto m = sample::sampleModeFromName(value);
            if (!m) {
                isim_fatal("--sample-mode: expected 'fixed' or "
                           "'random', got '%s'",
                           value.c_str());
            }
            opts.sample.mode = *m;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opts.verbose = false;
        } else {
            argv[out++] = argv[i]; // not ours: keep it
        }
    }
    argc = out;
    // Degenerate sampling configurations (measure without ff, a
    // single window, warm > ff) must fail at the command line, not
    // deep inside a half-finished run.
    opts.sample.validate();
    return opts;
}

void
RunOptions::applyTo(WorkloadParams &params) const
{
    if (txns)
        params.transactions = *txns;
    if (warmup)
        params.warmupTransactions = *warmup;
    if (seed)
        params.seed = *seed;
}

void
RunOptions::applyGlobal() const
{
    verify::setAuditPeriod(auditPeriod);
    // --quiet silences inform/warn status lines as well as the
    // runner's per-experiment progress output.
    setQuiet(!verbose);
    // Asking for a profile output is the runtime enable: without it
    // (or without -DISIM_PROF=ON) every scope stays a single branch.
    if (!profOut.empty() && prof::compiledIn() && !prof::enabled())
        prof::setEnabled(true);
}

unsigned
RunOptions::effectiveJobs(std::size_t items) const
{
    unsigned j = jobs;
    if (j == 0)
        j = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t cap = std::max<std::size_t>(items, 1);
    return static_cast<unsigned>(
        std::min<std::size_t>(j, cap));
}

const char *
runOptionsHelp()
{
    return "  --txns=N             measured transactions per bar "
           "(default: the spec's)\n"
           "  --warmup=N           warm-up transactions per bar\n"
           "  --seed=N             workload seed for every bar\n"
           "  --json-dir=DIR       write the figure JSON into DIR\n"
           "  --jobs=N             run up to N bars concurrently "
           "(default: one per core)\n"
           "  --procs=N            campaign worker processes "
           "(isim-campaign; default 1)\n"
           "  --audit-period=N     invariant full-audit period\n"
           "  --stats-out=FILE     write the stats manifest to FILE "
           "(default: <json-dir>/<stem>.stats.json)\n"
           "  --stats-epoch=TICKS  embed per-epoch stat rows on this "
           "tick grid\n"
           "  --save-ckpt=DIR      save a warm checkpoint per bar "
           "into DIR after warm-up\n"
           "  --from-ckpt=DIR      restore warm checkpoints from DIR "
           "(skips warm-up)\n"
           "  --warmup-mode=MODE   warm-up execution mode: atomic or "
           "timing (default: the figure's)\n"
           "  --exec-mode=MODE     measurement execution mode "
           "(default timing; atomic has no event timing)\n"
           "  --prof-out=FILE      write the host self-profile "
           "(prof.json) to FILE\n"
           "  --sample-ff=N        sampled run: fast-forward N txns "
           "per period (docs/SAMPLING.md)\n"
           "  --sample-measure=N   sampled run: measure N txns per "
           "window (enables sampling)\n"
           "  --sample-windows=N   sampled run: window count "
           "(default: derived from --txns)\n"
           "  --sample-warm=N      sampled run: atomic-warm txns "
           "before each window (default: min(ff, measure))\n"
           "  --sample-mode=MODE   sampled run: window placement, "
           "fixed or random\n"
           "  --quiet              suppress per-run progress lines\n";
}

} // namespace isim
