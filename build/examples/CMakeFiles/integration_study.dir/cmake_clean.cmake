file(REMOVE_RECURSE
  "CMakeFiles/integration_study.dir/integration_study.cpp.o"
  "CMakeFiles/integration_study.dir/integration_study.cpp.o.d"
  "integration_study"
  "integration_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
