# Empty compiler generated dependencies file for integration_study.
# This may be replaced when dependencies are built.
