file(REMOVE_RECURSE
  "CMakeFiles/tpcb_demo.dir/tpcb_demo.cpp.o"
  "CMakeFiles/tpcb_demo.dir/tpcb_demo.cpp.o.d"
  "tpcb_demo"
  "tpcb_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcb_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
