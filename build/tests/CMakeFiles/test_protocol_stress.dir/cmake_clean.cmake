file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_stress.dir/test_protocol_stress.cc.o"
  "CMakeFiles/test_protocol_stress.dir/test_protocol_stress.cc.o.d"
  "test_protocol_stress"
  "test_protocol_stress.pdb"
  "test_protocol_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
