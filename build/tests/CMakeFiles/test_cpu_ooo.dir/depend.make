# Empty dependencies file for test_cpu_ooo.
# This may be replaced when dependencies are built.
