file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_ooo.dir/test_cpu_ooo.cc.o"
  "CMakeFiles/test_cpu_ooo.dir/test_cpu_ooo.cc.o.d"
  "test_cpu_ooo"
  "test_cpu_ooo.pdb"
  "test_cpu_ooo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
