# Empty compiler generated dependencies file for test_oltp_tables.
# This may be replaced when dependencies are built.
