file(REMOVE_RECURSE
  "CMakeFiles/test_oltp_tables.dir/test_oltp_tables.cc.o"
  "CMakeFiles/test_oltp_tables.dir/test_oltp_tables.cc.o.d"
  "test_oltp_tables"
  "test_oltp_tables.pdb"
  "test_oltp_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oltp_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
