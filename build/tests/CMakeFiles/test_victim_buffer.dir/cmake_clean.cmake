file(REMOVE_RECURSE
  "CMakeFiles/test_victim_buffer.dir/test_victim_buffer.cc.o"
  "CMakeFiles/test_victim_buffer.dir/test_victim_buffer.cc.o.d"
  "test_victim_buffer"
  "test_victim_buffer.pdb"
  "test_victim_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_victim_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
