file(REMOVE_RECURSE
  "CMakeFiles/test_code_model.dir/test_code_model.cc.o"
  "CMakeFiles/test_code_model.dir/test_code_model.cc.o.d"
  "test_code_model"
  "test_code_model.pdb"
  "test_code_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_code_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
