# Empty dependencies file for test_cpu_inorder.
# This may be replaced when dependencies are built.
