file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_inorder.dir/test_cpu_inorder.cc.o"
  "CMakeFiles/test_cpu_inorder.dir/test_cpu_inorder.cc.o.d"
  "test_cpu_inorder"
  "test_cpu_inorder.pdb"
  "test_cpu_inorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
