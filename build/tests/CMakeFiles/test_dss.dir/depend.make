# Empty dependencies file for test_dss.
# This may be replaced when dependencies are built.
