file(REMOVE_RECURSE
  "CMakeFiles/test_dss.dir/test_dss.cc.o"
  "CMakeFiles/test_dss.dir/test_dss.cc.o.d"
  "test_dss"
  "test_dss.pdb"
  "test_dss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
