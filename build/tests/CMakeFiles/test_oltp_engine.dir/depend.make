# Empty dependencies file for test_oltp_engine.
# This may be replaced when dependencies are built.
