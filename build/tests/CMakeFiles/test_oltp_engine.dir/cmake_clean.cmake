file(REMOVE_RECURSE
  "CMakeFiles/test_oltp_engine.dir/test_oltp_engine.cc.o"
  "CMakeFiles/test_oltp_engine.dir/test_oltp_engine.cc.o.d"
  "test_oltp_engine"
  "test_oltp_engine.pdb"
  "test_oltp_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oltp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
