
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/isim.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/isim.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/isim.dir/base/random.cc.o" "gcc" "src/CMakeFiles/isim.dir/base/random.cc.o.d"
  "/root/repo/src/coherence/directory.cc" "src/CMakeFiles/isim.dir/coherence/directory.cc.o" "gcc" "src/CMakeFiles/isim.dir/coherence/directory.cc.o.d"
  "/root/repo/src/coherence/protocol.cc" "src/CMakeFiles/isim.dir/coherence/protocol.cc.o" "gcc" "src/CMakeFiles/isim.dir/coherence/protocol.cc.o.d"
  "/root/repo/src/config/options.cc" "src/CMakeFiles/isim.dir/config/options.cc.o" "gcc" "src/CMakeFiles/isim.dir/config/options.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/isim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/isim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/figures.cc" "src/CMakeFiles/isim.dir/core/figures.cc.o" "gcc" "src/CMakeFiles/isim.dir/core/figures.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/CMakeFiles/isim.dir/core/machine.cc.o" "gcc" "src/CMakeFiles/isim.dir/core/machine.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/isim.dir/core/report.cc.o" "gcc" "src/CMakeFiles/isim.dir/core/report.cc.o.d"
  "/root/repo/src/core/simulation.cc" "src/CMakeFiles/isim.dir/core/simulation.cc.o" "gcc" "src/CMakeFiles/isim.dir/core/simulation.cc.o.d"
  "/root/repo/src/cpu/inorder.cc" "src/CMakeFiles/isim.dir/cpu/inorder.cc.o" "gcc" "src/CMakeFiles/isim.dir/cpu/inorder.cc.o.d"
  "/root/repo/src/cpu/ooo.cc" "src/CMakeFiles/isim.dir/cpu/ooo.cc.o" "gcc" "src/CMakeFiles/isim.dir/cpu/ooo.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/isim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/isim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/isim.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/isim.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/rac.cc" "src/CMakeFiles/isim.dir/mem/rac.cc.o" "gcc" "src/CMakeFiles/isim.dir/mem/rac.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/isim.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/isim.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/CMakeFiles/isim.dir/noc/topology.cc.o" "gcc" "src/CMakeFiles/isim.dir/noc/topology.cc.o.d"
  "/root/repo/src/oltp/buffer_cache.cc" "src/CMakeFiles/isim.dir/oltp/buffer_cache.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/buffer_cache.cc.o.d"
  "/root/repo/src/oltp/code_model.cc" "src/CMakeFiles/isim.dir/oltp/code_model.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/code_model.cc.o.d"
  "/root/repo/src/oltp/daemons.cc" "src/CMakeFiles/isim.dir/oltp/daemons.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/daemons.cc.o.d"
  "/root/repo/src/oltp/dss.cc" "src/CMakeFiles/isim.dir/oltp/dss.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/dss.cc.o.d"
  "/root/repo/src/oltp/latch.cc" "src/CMakeFiles/isim.dir/oltp/latch.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/latch.cc.o.d"
  "/root/repo/src/oltp/log.cc" "src/CMakeFiles/isim.dir/oltp/log.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/log.cc.o.d"
  "/root/repo/src/oltp/server.cc" "src/CMakeFiles/isim.dir/oltp/server.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/server.cc.o.d"
  "/root/repo/src/oltp/sga.cc" "src/CMakeFiles/isim.dir/oltp/sga.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/sga.cc.o.d"
  "/root/repo/src/oltp/tables.cc" "src/CMakeFiles/isim.dir/oltp/tables.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/tables.cc.o.d"
  "/root/repo/src/oltp/workload.cc" "src/CMakeFiles/isim.dir/oltp/workload.cc.o" "gcc" "src/CMakeFiles/isim.dir/oltp/workload.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/isim.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/isim.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/isim.dir/os/process.cc.o" "gcc" "src/CMakeFiles/isim.dir/os/process.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/CMakeFiles/isim.dir/os/scheduler.cc.o" "gcc" "src/CMakeFiles/isim.dir/os/scheduler.cc.o.d"
  "/root/repo/src/os/vm.cc" "src/CMakeFiles/isim.dir/os/vm.cc.o" "gcc" "src/CMakeFiles/isim.dir/os/vm.cc.o.d"
  "/root/repo/src/stats/breakdown.cc" "src/CMakeFiles/isim.dir/stats/breakdown.cc.o" "gcc" "src/CMakeFiles/isim.dir/stats/breakdown.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/isim.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/isim.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/isim.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/isim.dir/stats/table.cc.o.d"
  "/root/repo/src/timing/component_model.cc" "src/CMakeFiles/isim.dir/timing/component_model.cc.o" "gcc" "src/CMakeFiles/isim.dir/timing/component_model.cc.o.d"
  "/root/repo/src/timing/latency_config.cc" "src/CMakeFiles/isim.dir/timing/latency_config.cc.o" "gcc" "src/CMakeFiles/isim.dir/timing/latency_config.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/CMakeFiles/isim.dir/trace/record.cc.o" "gcc" "src/CMakeFiles/isim.dir/trace/record.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/isim.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/isim.dir/trace/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
