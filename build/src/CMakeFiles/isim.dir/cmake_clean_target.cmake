file(REMOVE_RECURSE
  "libisim.a"
)
