# Empty compiler generated dependencies file for isim.
# This may be replaced when dependencies are built.
