file(REMOVE_RECURSE
  "../bench/fig03_latencies"
  "../bench/fig03_latencies.pdb"
  "CMakeFiles/fig03_latencies.dir/fig03_latencies.cpp.o"
  "CMakeFiles/fig03_latencies.dir/fig03_latencies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
