# Empty dependencies file for fig03_latencies.
# This may be replaced when dependencies are built.
