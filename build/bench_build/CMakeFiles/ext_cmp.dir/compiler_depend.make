# Empty compiler generated dependencies file for ext_cmp.
# This may be replaced when dependencies are built.
