file(REMOVE_RECURSE
  "../bench/ext_cmp"
  "../bench/ext_cmp.pdb"
  "CMakeFiles/ext_cmp.dir/ext_cmp.cpp.o"
  "CMakeFiles/ext_cmp.dir/ext_cmp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
