file(REMOVE_RECURSE
  "../bench/ablation_assoc"
  "../bench/ablation_assoc.pdb"
  "CMakeFiles/ablation_assoc.dir/ablation_assoc.cpp.o"
  "CMakeFiles/ablation_assoc.dir/ablation_assoc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
