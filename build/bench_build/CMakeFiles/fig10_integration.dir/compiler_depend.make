# Empty compiler generated dependencies file for fig10_integration.
# This may be replaced when dependencies are built.
