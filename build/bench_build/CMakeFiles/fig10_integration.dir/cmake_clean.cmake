file(REMOVE_RECURSE
  "../bench/fig10_integration"
  "../bench/fig10_integration.pdb"
  "CMakeFiles/fig10_integration.dir/fig10_integration.cpp.o"
  "CMakeFiles/fig10_integration.dir/fig10_integration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
