file(REMOVE_RECURSE
  "../bench/ablation_bandwidth"
  "../bench/ablation_bandwidth.pdb"
  "CMakeFiles/ablation_bandwidth.dir/ablation_bandwidth.cpp.o"
  "CMakeFiles/ablation_bandwidth.dir/ablation_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
