# Empty compiler generated dependencies file for fig06_mp_offchip_l2.
# This may be replaced when dependencies are built.
