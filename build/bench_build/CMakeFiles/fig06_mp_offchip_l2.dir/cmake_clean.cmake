file(REMOVE_RECURSE
  "../bench/fig06_mp_offchip_l2"
  "../bench/fig06_mp_offchip_l2.pdb"
  "CMakeFiles/fig06_mp_offchip_l2.dir/fig06_mp_offchip_l2.cpp.o"
  "CMakeFiles/fig06_mp_offchip_l2.dir/fig06_mp_offchip_l2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_mp_offchip_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
