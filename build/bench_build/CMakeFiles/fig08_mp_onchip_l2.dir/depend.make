# Empty dependencies file for fig08_mp_onchip_l2.
# This may be replaced when dependencies are built.
