file(REMOVE_RECURSE
  "../bench/fig08_mp_onchip_l2"
  "../bench/fig08_mp_onchip_l2.pdb"
  "CMakeFiles/fig08_mp_onchip_l2.dir/fig08_mp_onchip_l2.cpp.o"
  "CMakeFiles/fig08_mp_onchip_l2.dir/fig08_mp_onchip_l2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mp_onchip_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
