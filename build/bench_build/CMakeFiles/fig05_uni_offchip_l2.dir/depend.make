# Empty dependencies file for fig05_uni_offchip_l2.
# This may be replaced when dependencies are built.
