# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_uni_offchip_l2.
