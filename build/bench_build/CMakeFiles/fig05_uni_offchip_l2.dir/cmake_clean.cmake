file(REMOVE_RECURSE
  "../bench/fig05_uni_offchip_l2"
  "../bench/fig05_uni_offchip_l2.pdb"
  "CMakeFiles/fig05_uni_offchip_l2.dir/fig05_uni_offchip_l2.cpp.o"
  "CMakeFiles/fig05_uni_offchip_l2.dir/fig05_uni_offchip_l2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_uni_offchip_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
