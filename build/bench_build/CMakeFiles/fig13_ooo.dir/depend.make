# Empty dependencies file for fig13_ooo.
# This may be replaced when dependencies are built.
