file(REMOVE_RECURSE
  "../bench/fig13_ooo"
  "../bench/fig13_ooo.pdb"
  "CMakeFiles/fig13_ooo.dir/fig13_ooo.cpp.o"
  "CMakeFiles/fig13_ooo.dir/fig13_ooo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
