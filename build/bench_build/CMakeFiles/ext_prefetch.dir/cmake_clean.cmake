file(REMOVE_RECURSE
  "../bench/ext_prefetch"
  "../bench/ext_prefetch.pdb"
  "CMakeFiles/ext_prefetch.dir/ext_prefetch.cpp.o"
  "CMakeFiles/ext_prefetch.dir/ext_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
