file(REMOVE_RECURSE
  "../bench/ablation_victim"
  "../bench/ablation_victim.pdb"
  "CMakeFiles/ablation_victim.dir/ablation_victim.cpp.o"
  "CMakeFiles/ablation_victim.dir/ablation_victim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
