# Empty dependencies file for ext_dss.
# This may be replaced when dependencies are built.
