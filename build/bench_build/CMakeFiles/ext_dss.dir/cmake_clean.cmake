file(REMOVE_RECURSE
  "../bench/ext_dss"
  "../bench/ext_dss.pdb"
  "CMakeFiles/ext_dss.dir/ext_dss.cpp.o"
  "CMakeFiles/ext_dss.dir/ext_dss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
