file(REMOVE_RECURSE
  "../bench/fig02_base_params"
  "../bench/fig02_base_params.pdb"
  "CMakeFiles/fig02_base_params.dir/fig02_base_params.cpp.o"
  "CMakeFiles/fig02_base_params.dir/fig02_base_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_base_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
