# Empty dependencies file for fig02_base_params.
# This may be replaced when dependencies are built.
