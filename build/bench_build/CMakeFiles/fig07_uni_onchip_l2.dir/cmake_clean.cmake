file(REMOVE_RECURSE
  "../bench/fig07_uni_onchip_l2"
  "../bench/fig07_uni_onchip_l2.pdb"
  "CMakeFiles/fig07_uni_onchip_l2.dir/fig07_uni_onchip_l2.cpp.o"
  "CMakeFiles/fig07_uni_onchip_l2.dir/fig07_uni_onchip_l2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_uni_onchip_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
