# Empty dependencies file for fig07_uni_onchip_l2.
# This may be replaced when dependencies are built.
