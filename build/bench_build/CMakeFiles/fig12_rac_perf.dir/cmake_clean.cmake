file(REMOVE_RECURSE
  "../bench/fig12_rac_perf"
  "../bench/fig12_rac_perf.pdb"
  "CMakeFiles/fig12_rac_perf.dir/fig12_rac_perf.cpp.o"
  "CMakeFiles/fig12_rac_perf.dir/fig12_rac_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rac_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
