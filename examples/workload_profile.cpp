/**
 * @file
 * Workload characterization: runs the OLTP workload on a machine with
 * VM region profiling enabled and prints, per memory region, the
 * access volume and the unique-line footprint — the numbers behind
 * the calibration story in DESIGN.md (hot head vs warm band vs cold
 * streams).
 *
 * Usage: workload_profile [num_cpus] [transactions]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/figures.hh"
#include "src/core/machine.hh"
#include "src/stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const unsigned cpus =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
    const std::uint64_t txns =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 500;

    MachineConfig cfg = figures::baseMachine(cpus);
    if (argc > 4) {
        cfg = figures::offchip(
            cpus,
            static_cast<std::uint64_t>(std::atoi(argv[3])) * mib,
            static_cast<unsigned>(std::atoi(argv[4])));
    }
    cfg.workload.transactions = txns;
    cfg.workload.warmupTransactions = txns / 4;

    Machine machine(cfg);
    machine.vm().enableProfiling(true);
    std::vector<std::uint64_t> region_misses(64, 0);
    machine.memSys().setMissHook(
        [&](Addr paddr, RefType, MissClass) {
            const int idx = machine.vm().regionIndexOfPaddr(paddr);
            if (idx >= 0 &&
                idx < static_cast<int>(region_misses.size()))
                ++region_misses[idx];
        });
    const RunResult r = machine.run(ExecMode::Timing);

    std::cout << "profiled " << r.transactions << " transactions on "
              << cpus << " cpu(s); " << r.cpu.instructions
              << " instructions\n\n";

    Table t({"Region", "Policy", "Size(KB)", "Accesses", "Acc/txn",
             "UniqLines", "Uniq(KB)", "Misses", "Miss/txn"});
    std::uint64_t total_lines = 0;
    std::size_t region_idx = 0;
    for (const auto &p : machine.vm().regionProfiles()) {
        const char *policy =
            p.policy == PlacePolicy::Interleave ? "stripe"
            : p.policy == PlacePolicy::Local    ? "local"
                                                : "repl";
        t.row()
            .cell(p.name)
            .cell(policy)
            .count(p.size / 1024)
            .count(p.accesses)
            .num(static_cast<double>(p.accesses) /
                 static_cast<double>(r.transactions ? r.transactions : 1))
            .count(p.uniqueLines)
            .count(p.uniqueLines * 64 / 1024)
            .count(region_misses[region_idx])
            .num(static_cast<double>(region_misses[region_idx]) /
                 static_cast<double>(r.transactions ? r.transactions
                                                    : 1));
        total_lines += p.uniqueLines;
        ++region_idx;
    }
    t.print(std::cout);
    std::cout << "\ntotal unique footprint: " << total_lines * 64 / 1024
              << " KB\n";
    return 0;
}
