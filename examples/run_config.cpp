/**
 * @file
 * Run a machine described by a configuration file and print the
 * paper-style report — the no-C++-required front end.
 *
 * Usage: run_config <config-file> [more-config-files...] [options]
 *        run_config --dump          (print the default config text)
 *
 * With several files, all machines run (concurrently, see --jobs)
 * and the report is normalized to the first — so a file per bar
 * reproduces any figure. Options are the shared run flags
 * (--txns/--warmup/--seed/--jobs/--json-dir/--quiet), with the
 * ISIM_* environment variables as fallbacks.
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "src/base/json.hh"
#include "src/config/options.hh"
#include "src/config/run_options.hh"
#include "src/core/report.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const RunOptions opts = RunOptions::fromCommandLine(argc, argv);
    if (argc < 2) {
        std::cerr << "usage: run_config <config-file>... [options] | "
                     "--dump\nOptions:\n"
                  << runOptionsHelp();
        return 2;
    }
    if (std::strcmp(argv[1], "--dump") == 0) {
        std::cout << machineToConfigText(MachineConfig{});
        return 0;
    }

    FigureSpec spec;
    spec.id = "run_config";
    spec.title = "machines from configuration files";
    for (int i = 1; i < argc; ++i) {
        FigureBar bar;
        bar.config = machineFromConfig(KvConfig::fromFile(argv[i]));
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;
    spec.multiprocessor = spec.bars[0].config.numCpus > 1;

    opts.applyGlobal();
    ExperimentRunner runner(opts);
    const FigureResult result = runner.run(spec);
    printFigureReport(std::cout, result);
    if (!opts.statsOut.empty()) {
        // Same contract as isim-fig: a validated stats manifest, so
        // config-file machines join the isim-stat / CI-diff workflow
        // (the golden-checkpoint regression restores a tiny machine
        // from a committed image and diffs this output).
        const std::string manifest = figureStatsJson(result);
        std::string err;
        if (!jsonValidate(manifest, &err))
            isim_panic("stats manifest does not validate: %s",
                       err.c_str());
        std::ofstream out(opts.statsOut);
        out << manifest;
        if (!out) {
            std::cerr << "cannot write " << opts.statsOut << "\n";
            return 1;
        }
        std::cout << "stats written to " << opts.statsOut << "\n";
    }
    return 0;
}
