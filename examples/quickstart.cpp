/**
 * @file
 * Quickstart: build one machine, run the OLTP workload, print the
 * paper-style execution-time and miss breakdowns.
 *
 * Usage: quickstart [num_cpus] [transactions]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/figures.hh"
#include "src/core/machine.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const unsigned cpus =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
    const std::uint64_t txns =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 500;

    // The paper's Base machine: 1 GHz CPU, 64 KB 2-way L1s, an 8 MB
    // direct-mapped off-chip L2, all memory-system modules off chip.
    MachineConfig cfg = figures::baseMachine(cpus);
    cfg.workload.transactions = txns;
    cfg.workload.warmupTransactions = txns / 4;

    std::cout << "Running " << cfg.name << " with " << cpus
              << " cpu(s), " << txns << " transactions...\n";

    // Warm the caches in atomic (fast-functional) mode — identical
    // warm state for this in-order machine, a fraction of the wall
    // time — then measure with the paper's timing model. See
    // docs/EXECMODE.md.
    Machine machine(cfg);
    const RunResult r = machine.run(ExecMode::Atomic, ExecMode::Timing);

    const double exec = static_cast<double>(r.execTime());
    std::cout << "\ntransactions: " << r.transactions
              << "  (throughput " << r.tps() << " tps)\n";
    std::cout << "TPC-B consistency: "
              << (r.dbConsistent ? "ok" : "FAILED") << "\n";
    std::cout << "instructions: " << r.cpu.instructions << "\n";
    std::cout << "execution time breakdown (% of non-idle):\n";
    auto pct = [&](Tick t) {
        return exec > 0 ? 100.0 * static_cast<double>(t) / exec : 0.0;
    };
    std::cout << "  CPU busy:   " << pct(r.cpu.busy) << "\n";
    std::cout << "  L2 hit:     " << pct(r.cpu.l2HitStall) << "\n";
    std::cout << "  local mem:  " << pct(r.cpu.localStall) << "\n";
    std::cout << "  remote mem: " << pct(r.cpu.remStall()) << "\n";
    std::cout << "kernel share: " << 100.0 * r.cpu.kernelFraction()
              << "%\n";
    std::cout << "L2 misses: total " << r.misses.totalL2Misses()
              << "  (I-loc " << r.misses.instrLocal << ", I-rem "
              << r.misses.instrRemote << ", D-loc " << r.misses.dataLocal
              << ", D-2hop " << r.misses.dataRemoteClean << ", D-3hop "
              << r.misses.dataRemoteDirty << ")\n";
    return 0;
}
