/**
 * @file
 * Cache explorer: sweep arbitrary L2 sizes and associativities over
 * the OLTP workload and print the miss-rate surface — the tool for
 * reproducing the paper's "associativity vs capacity" analysis at
 * points the figures do not cover.
 *
 * Usage: cache_explorer [num_cpus] [transactions]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/figures.hh"
#include "src/core/machine.hh"
#include "src/stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const unsigned cpus =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
    const std::uint64_t txns =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 400;

    const std::vector<std::uint64_t> sizes = {512 * kib, 1 * mib,
                                              2 * mib, 4 * mib,
                                              8 * mib};
    const std::vector<unsigned> assocs = {1, 2, 4, 8};

    std::cout << "L2 miss rate surface (misses per 1000 instructions), "
              << cpus << " cpu(s), " << txns << " transactions\n\n";

    Table t({"Size \\ Assoc", "1-way", "2-way", "4-way", "8-way"});
    for (const std::uint64_t size : sizes) {
        auto row = t.row();
        row.cell(CacheGeometry{size, 1, 64}.shortName().substr(
                     0, CacheGeometry{size, 1, 64}
                            .shortName()
                            .size() -
                         2));
        for (const unsigned assoc : assocs) {
            MachineConfig cfg = figures::offchip(cpus, size, assoc);
            cfg.workload.transactions = txns;
            cfg.workload.warmupTransactions = txns / 2;
            Machine m(cfg);
            const RunResult r = m.run(ExecMode::Timing);
            const double mpki =
                1000.0 *
                static_cast<double>(r.misses.totalL2Misses()) /
                static_cast<double>(r.cpu.instructions);
            row.num(mpki, 2);
        }
    }
    t.print(std::cout);

    std::cout << "\nReading the surface: the paper's Section 3/6 "
                 "result is that the diagonal\nmatters — a small, "
                 "highly associative cache beats a large direct-mapped "
                 "one\nbecause much of OLTP's apparent capacity demand "
                 "is conflict misses.\n";
    return 0;
}
