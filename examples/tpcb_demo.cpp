/**
 * @file
 * TPC-B demo: runs the OLTP engine on an Alpha-21364-class fully
 * integrated machine and reports database-level results — throughput,
 * transaction latency distribution, consistency check, daemon
 * activity — the view a database administrator (rather than an
 * architect) would want.
 *
 * Usage: tpcb_demo [num_cpus] [transactions]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/figures.hh"
#include "src/core/machine.hh"
#include "src/stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const unsigned cpus =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    const std::uint64_t txns =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 1000;

    MachineConfig cfg =
        figures::onchip(cpus, 2 * mib, 8, IntegrationLevel::FullInt);
    cfg.workload.transactions = txns;
    cfg.workload.warmupTransactions = txns / 4;

    std::cout << "TPC-B on a fully integrated " << cpus
              << "-processor machine (" << cfg.workload.branches
              << " branches, " << cfg.workload.totalAccounts()
              << " accounts, " << cfg.workload.serversPerCpu
              << " servers/cpu)\n\n";

    Machine machine(cfg);
    const RunResult r = machine.run(ExecMode::Timing);
    OltpEngine &engine = machine.engine();

    Table t({"Metric", "Value"});
    t.row().cell("Committed transactions").count(r.transactions);
    t.row().cell("Throughput (tps)").num(r.tps(), 0);
    t.row().cell("Wall time (ms)").num(r.wallTime / 1e6, 2);
    t.row().cell("TPC-B consistency").cell(r.dbConsistent ? "ok"
                                                          : "FAILED");
    const Histogram &lat = engine.txnLatency();
    t.row().cell("Txn latency mean (us)").num(lat.mean(), 0);
    t.row().cell("Txn latency p50 (us)").num(lat.quantile(0.5), 0);
    t.row().cell("Txn latency p95 (us)").num(lat.quantile(0.95), 0);
    t.row().cell("Latch acquires").count(engine.latches().acquires());
    t.row().cell("Buffer-cache lookups")
        .count(engine.bufferCache().lookups());
    t.row().cell("Redo slots written").count(engine.redo().cursor());
    t.row().cell("Context switches")
        .count(machine.sched().contextSwitches());
    t.row().cell("Kernel share of time (%)")
        .num(100.0 * r.cpu.kernelFraction());
    t.print(std::cout);

    std::cout << "\nSample balances (accounts really moved):\n";
    const TpcbDatabase &db = engine.db();
    for (std::uint64_t b = 0; b < 4; ++b) {
        std::cout << "  branch " << b << ": balance "
                  << db.branchBalance(b) << "\n";
    }
    return r.dbConsistent ? 0 : 1;
}
