/**
 * @file
 * NoC latency explorer: prints the 21364-style torus hop matrix and
 * the end-to-end message latencies between every pair of nodes —
 * where the Figure 3 remote latencies come from, physically.
 *
 * Usage: noc_latency [num_nodes]
 */

#include <cstdlib>
#include <iostream>

#include "src/noc/network.hh"
#include "src/stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const unsigned nodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;

    const TorusTopology topo(nodes);
    const Network net(topo, LinkParams{});

    std::cout << nodes << "-node torus: " << topo.width() << "x"
              << topo.height() << ", diameter " << topo.diameter()
              << ", average hops " << formatNum(topo.averageHops(), 2)
              << "\n\n";

    std::vector<std::string> headers = {"hops"};
    for (NodeId b = 0; b < nodes; ++b)
        headers.push_back("n" + std::to_string(b));
    Table t(headers);
    for (NodeId a = 0; a < nodes; ++a) {
        auto row = t.row();
        row.cell("n" + std::to_string(a));
        for (NodeId b = 0; b < nodes; ++b)
            row.count(topo.hops(a, b));
    }
    t.print(std::cout);

    std::cout << "\nOne-way latency for a 64-byte data message "
                 "(cycles @1GHz):\n\n";
    Table l(headers);
    for (NodeId a = 0; a < nodes; ++a) {
        auto row = l.row();
        row.cell("n" + std::to_string(a));
        for (NodeId b = 0; b < nodes; ++b)
            row.count(net.oneWay(a, b, 64));
    }
    l.print(std::cout);

    std::cout << "\nControl message (8B): average one-way "
              << net.oneWayAverage(8) << " cycles; data (64B): "
              << net.oneWayAverage(64) << " cycles.\n";
    return 0;
}
