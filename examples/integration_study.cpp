/**
 * @file
 * Integration study in miniature: sweeps the paper's integration
 * ladder (Conservative Base -> Base -> +L2 -> +MC -> +CC/NR) on a
 * machine size of your choice and prints execution-time breakdowns —
 * the core experiment of the paper as a single runnable program.
 *
 * Usage: integration_study [num_cpus] [transactions]
 */

#include <cstdlib>
#include <iostream>

#include "src/core/figures.hh"
#include "src/core/report.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const unsigned cpus =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    const std::uint64_t txns =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 600;

    FigureSpec spec;
    spec.id = "Integration ladder";
    spec.title = "Successive chip-level integration, " +
                 std::to_string(cpus) + " processor(s)";
    spec.multiprocessor = cpus > 1;

    FigureBar cons;
    cons.config = figures::offchip(cpus, 8 * mib, 4, true);
    spec.bars.push_back(cons);
    FigureBar base;
    base.config = figures::baseMachine(cpus);
    spec.bars.push_back(base);
    FigureBar l2;
    l2.config = figures::onchip(cpus, 2 * mib, 8,
                                IntegrationLevel::L2Int);
    spec.bars.push_back(l2);
    FigureBar mc;
    mc.config = figures::onchip(cpus, 2 * mib, 8,
                                IntegrationLevel::L2McInt);
    spec.bars.push_back(mc);
    if (cpus > 1) {
        FigureBar all;
        all.config = figures::onchip(cpus, 2 * mib, 8,
                                     IntegrationLevel::FullInt);
        spec.bars.push_back(all);
    }
    spec.normalizeTo = 1; // normalize to Base, like Figure 10

    for (FigureBar &bar : spec.bars) {
        bar.config.workload.transactions = txns;
        bar.config.workload.warmupTransactions = txns / 3;
    }

    ExperimentRunner runner;
    const FigureResult result = runner.run(spec);
    printFigureReport(std::cout, result);

    const double cons_time = static_cast<double>(result.runs[0].execTime());
    const double base_time = static_cast<double>(result.runs[1].execTime());
    const double full_time =
        static_cast<double>(result.runs.back().execTime());
    std::cout << "Speedup of full integration: "
              << formatNum(base_time / full_time, 2) << "x vs Base, "
              << formatNum(cons_time / full_time, 2)
              << "x vs Conservative Base\n";
    std::cout << "(paper: ~1.4x vs Base, 1.5-1.6x vs Conservative)\n";
    return 0;
}
