/**
 * @file
 * isim-stat: inspect and compare stats.json manifests.
 *
 * A figure binary run with --stats-out=FILE (or --json-dir=DIR)
 * writes the schema-versioned stats manifest this tool consumes:
 *
 *   isim-stat dump  stats.json                every stat, one per line
 *   isim-stat grep  PATTERN stats.json        stats whose path matches
 *   isim-stat diff  a.json b.json [--tolerance=R] [--ci]
 *
 * `diff` compares two manifests stat-by-stat and exits 1 when any
 * stat drifted beyond the relative tolerance (default 0: values must
 * be bit-identical) or is present on one side only — the shape CI
 * regression gates want. With `--ci`, a stat that carries a 95%
 * confidence interval on either side (sampled runs, docs/SAMPLING.md)
 * passes when the delta is within the union of the two intervals;
 * stats without a CI fall back to the relative tolerance. PATTERN is
 * a plain substring match on the flattened "<bar>/<stat>" path.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/stats/manifest.hh"

namespace {

using namespace isim;

int
usage(std::ostream &os, int rc)
{
    os << "usage: isim-stat <command> ...\n\n"
          "commands:\n"
          "  dump FILE                   every stat as `path value`\n"
          "  grep PATTERN FILE           stats whose path contains "
          "PATTERN\n"
          "  diff A B [--tolerance=R] [--ci]\n"
          "                              compare two manifests; exit "
          "1 on drift,\n"
          "                              2 when either side has no "
          "stats rows\n\n"
          "options:\n"
          "  --tolerance=R   relative tolerance for diff "
          "(|b-a|/max(|a|,|b|) <= R\n"
          "                  passes; default 0 = bit-identical)\n"
          "  --ci            accept drift within the union of the two "
          "sides'\n"
          "                  sampled 95% confidence intervals "
          "(docs/SAMPLING.md);\n"
          "                  order-statistic fields (.p50/.p95/...) "
          "and gauges\n"
          "                  are skipped; --tolerance floors CI "
          "pairs\n";
    return rc;
}

/** Read and parse a manifest file into its document tree. */
JsonValue
loadDoc(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "isim-stat: cannot open '" << path << "'\n";
        std::exit(1);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    std::string err;
    if (!jsonParse(buffer.str(), doc, &err)) {
        std::cerr << "isim-stat: " << path << ": " << err << "\n";
        std::exit(1);
    }
    return doc;
}

/** Sorted-vector CI lookup ("<bar>/<stat>" -> ci95); NaN if absent. */
const stats::FlatStat *
findCi(const std::vector<stats::FlatStat> &ci, const std::string &path)
{
    const auto it = std::lower_bound(
        ci.begin(), ci.end(), path,
        [](const stats::FlatStat &s, const std::string &p) {
            return s.path < p;
        });
    return it != ci.end() && it->path == path ? &*it : nullptr;
}

void
printStat(const stats::FlatStat &s, const stats::FlatStat *ci)
{
    char line[320];
    if (ci != nullptr) {
        std::snprintf(line, sizeof(line), "%-64s %.17g ±%.6g\n",
                      s.path.c_str(), s.value, ci->value);
    } else {
        std::snprintf(line, sizeof(line), "%-64s %.17g\n",
                      s.path.c_str(), s.value);
    }
    std::fputs(line, stdout);
}

double
parseTolerance(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0) {
        std::cerr << "isim-stat: --tolerance: expected a non-negative "
                     "number, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return v;
}

int
cmdDump(const std::string &path, const std::string &pattern)
{
    const JsonValue doc = loadDoc(path);
    // Bars that carry a META block print it first, so cache keys are
    // auditable next to the stats they address. Sampled bars append
    // their schedule.
    if (pattern.empty()) {
        for (const stats::BarMetaView &view : stats::manifestMeta(doc)) {
            char line[512];
            std::string sampled;
            if (!view.meta.sampleMode.empty()) {
                sampled = " sampled=" + view.meta.sampleMode + ":ff" +
                          std::to_string(view.meta.sampleFf) + "+m" +
                          std::to_string(view.meta.sampleMeasure) +
                          "x" + std::to_string(view.meta.sampleWindows);
            }
            std::snprintf(line, sizeof(line),
                          "META %s key=%s config=%s seed=%llu "
                          "schema=%d%s%s%s\n",
                          view.bar.c_str(), view.meta.key.c_str(),
                          view.meta.configDigest.c_str(),
                          static_cast<unsigned long long>(
                              view.meta.seed),
                          view.meta.schemaVersion, sampled.c_str(),
                          view.meta.status.empty() ? "" : " status=",
                          view.meta.status.c_str());
            std::fputs(line, stdout);
        }
    }
    // Sampled manifests annotate each bounded stat with its ±95% CI.
    const std::vector<stats::FlatStat> ci = stats::flattenCi95(doc);
    std::size_t shown = 0;
    for (const stats::FlatStat &s : stats::flattenManifest(doc)) {
        if (!pattern.empty() &&
            s.path.find(pattern) == std::string::npos) {
            continue;
        }
        printStat(s, findCi(ci, s.path));
        ++shown;
    }
    if (!pattern.empty() && shown == 0) {
        std::cerr << "isim-stat: no stat matches '" << pattern
                  << "'\n";
        return 1;
    }
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB,
        double tolerance, bool use_ci)
{
    const JsonValue docA = loadDoc(pathA);
    const JsonValue docB = loadDoc(pathB);
    std::vector<stats::FlatStat> a = stats::flattenManifest(docA);
    std::vector<stats::FlatStat> b = stats::flattenManifest(docB);
    const bool anySampled =
        use_ci && (stats::manifestHasSampling(docA) ||
                   stats::manifestHasSampling(docB));
    if (anySampled) {
        // Gauges are levels, not rates: a sampled manifest reports the
        // mean level over its windows, an exact one the end-of-run
        // level. No CI reconciles those, so CI-aware diffs skip them.
        std::vector<std::string> gauges =
            stats::manifestGaugePaths(docA);
        std::vector<std::string> gaugesB =
            stats::manifestGaugePaths(docB);
        gauges.insert(gauges.end(), gaugesB.begin(), gaugesB.end());
        std::sort(gauges.begin(), gauges.end());
        a = stats::dropPaths(a, gauges);
        b = stats::dropPaths(b, gauges);
    }
    // Two empty manifests compare "clean" vacuously — which is how a
    // broken producer slips through a CI gate. Zero rows is an
    // error, not a pass.
    if (a.empty() || b.empty()) {
        std::cerr << "isim-stat: '" << (a.empty() ? pathA : pathB)
                  << "' has no stats rows; refusing to compare "
                     "(a diff against nothing proves nothing)\n";
        return 2;
    }
    stats::DiffResult d;
    if (use_ci) {
        d = stats::diffFlattenedCi(a, b, stats::flattenCi95(docA),
                                   stats::flattenCi95(docB),
                                   anySampled, tolerance);
    } else {
        d = stats::diffFlattened(a, b, tolerance);
    }
    for (const stats::StatDiff &diff : d.diffs) {
        char line[320];
        std::snprintf(line, sizeof(line),
                      "%-64s %.17g -> %.17g (rel %.3g)\n",
                      diff.path.c_str(), diff.a, diff.b, diff.rel);
        std::fputs(line, stdout);
    }
    for (const std::string &path : d.onlyA)
        std::cout << path << " only in " << pathA << "\n";
    for (const std::string &path : d.onlyB)
        std::cout << path << " only in " << pathB << "\n";
    if (d.clean()) {
        std::cout << a.size() << " stats match";
        if (tolerance > 0.0)
            std::cout << " (tolerance " << tolerance << ")";
        if (use_ci)
            std::cout << " (CI-aware)";
        std::cout << "\n";
        return 0;
    }
    std::cout << d.diffs.size() << " stats drifted, "
              << d.onlyA.size() + d.onlyB.size()
              << " present on one side only\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        return usage(std::cout, 0);
    }
    if (argc < 3)
        return usage(std::cerr, 2);

    const std::string command = argv[1];
    if (command == "dump") {
        if (argc != 3)
            return usage(std::cerr, 2);
        return cmdDump(argv[2], "");
    }
    if (command == "grep") {
        if (argc != 4)
            return usage(std::cerr, 2);
        return cmdDump(argv[3], argv[2]);
    }
    if (command == "diff") {
        if (argc < 4)
            return usage(std::cerr, 2);
        double tolerance = 0.0;
        bool ci = false;
        for (int i = 4; i < argc; ++i) {
            const char *arg = argv[i];
            const char *prefix = "--tolerance=";
            if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) {
                tolerance = parseTolerance(arg + std::strlen(prefix));
            } else if (std::strcmp(arg, "--ci") == 0) {
                ci = true;
            } else {
                std::cerr << "isim-stat: unknown option '" << arg
                          << "'\n\n";
                return usage(std::cerr, 2);
            }
        }
        return cmdDiff(argv[2], argv[3], tolerance, ci);
    }
    std::cerr << "isim-stat: unknown command '" << command << "'\n\n";
    return usage(std::cerr, 2);
}
