/**
 * @file
 * mcheck — explicit-state model checker for the directory protocol.
 *
 * Exhaustively enumerates the reachable state space of the real
 * MemorySystem for tiny configurations and checks, on every explored
 * transition: protocol invariants (single-writer, directory/cache
 * agreement, inclusion, victim-buffer exclusivity), exact MissClass
 * classification against a reference oracle, data-value coherence via
 * a versioned shadow memory, and stats conservation. On a violation it
 * prints the shortest event trace and exits nonzero.
 *
 * Usage:
 *   mcheck [--preset smoke|full]
 *   mcheck [--nodes N] [--cores N] [--lines N] [--no-code] [--rac]
 *          [--vb N] [--max-states N] [--mutation NAME]
 *
 * NAME is one of the ProtocolMutation enumerators (e.g.
 * SkipUpgradeInval); injecting one must make the checker fail — that
 * is how the checker itself is tested.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/verify/mcheck.hh"

namespace {

using isim::ProtocolMutation;
using isim::verify::McheckConfig;
using isim::verify::McheckResult;
using isim::verify::modelCheck;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--preset smoke|full]\n"
                 "       %s [--nodes N] [--cores N] [--lines N] "
                 "[--no-code]\n"
                 "       %*s [--rac] [--vb N] [--max-states N] "
                 "[--mutation NAME]\n",
                 argv0, argv0, static_cast<int>(std::strlen(argv0)),
                 "");
    return 2;
}

bool
parseMutation(const std::string &name, ProtocolMutation &out)
{
    static const ProtocolMutation all[] = {
        ProtocolMutation::None,
        ProtocolMutation::SkipUpgradeInval,
        ProtocolMutation::ForgetSharerBit,
        ProtocolMutation::MisclassifyDirty,
        ProtocolMutation::DropVictimRelease,
        ProtocolMutation::SkipVictimBackInval,
    };
    for (ProtocolMutation m : all) {
        if (name == isim::protocolMutationName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

/** Run one configuration; returns true when it passed. */
bool
runOne(const McheckConfig &cfg)
{
    std::printf("mcheck %-28s ... ", cfg.name().c_str());
    std::fflush(stdout);
    const McheckResult res = modelCheck(cfg);
    if (!res.ok) {
        std::printf("VIOLATION after %llu states\n",
                    static_cast<unsigned long long>(res.states));
        std::printf("%s\n", res.violation.c_str());
        std::printf("shortest trace (%zu events):\n%s",
                    res.trace.size(),
                    res.traceString(cfg).c_str());
        return false;
    }
    std::printf("ok: %llu states, %llu transitions%s\n",
                static_cast<unsigned long long>(res.states),
                static_cast<unsigned long long>(res.transitions),
                res.exhausted ? ", exhausted" : " (CAPPED, not exhaustive)");
    return res.exhausted;
}

std::vector<McheckConfig>
preset(const std::string &name)
{
    std::vector<McheckConfig> cfgs;
    auto add = [&](unsigned nodes, unsigned cores, unsigned lines,
                   bool code, bool rac, unsigned vb) {
        McheckConfig c;
        c.numNodes = nodes;
        c.coresPerNode = cores;
        c.dataLines = lines;
        c.codeLine = code;
        c.racEnabled = rac;
        c.victimBufferEntries = vb;
        cfgs.push_back(c);
    };
    if (name == "smoke") {
        add(2, 1, 2, true, false, 0);
        add(2, 1, 2, false, true, 0);
        add(2, 1, 2, false, false, 1);
    } else if (name == "full") {
        add(2, 1, 2, true, false, 0);
        add(2, 1, 2, true, true, 0);
        add(2, 1, 2, false, false, 1);
        add(2, 1, 2, false, true, 1);
        add(2, 1, 3, false, false, 1); // victim-FIFO overflow path
        add(2, 2, 2, false, false, 0);
        add(3, 1, 3, false, false, 0);
        add(4, 1, 2, false, false, 0);
        add(4, 1, 2, false, true, 0);
    } else {
        cfgs.clear();
    }
    return cfgs;
}

} // namespace

int
main(int argc, char **argv)
{
    McheckConfig cfg;
    std::string preset_name;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--preset") {
            preset_name = value();
        } else if (arg == "--nodes") {
            cfg.numNodes = std::strtoul(value(), nullptr, 0);
        } else if (arg == "--cores") {
            cfg.coresPerNode = std::strtoul(value(), nullptr, 0);
        } else if (arg == "--lines") {
            cfg.dataLines = std::strtoul(value(), nullptr, 0);
        } else if (arg == "--no-code") {
            cfg.codeLine = false;
        } else if (arg == "--rac") {
            cfg.racEnabled = true;
        } else if (arg == "--vb") {
            cfg.victimBufferEntries = std::strtoul(value(), nullptr, 0);
        } else if (arg == "--max-states") {
            cfg.maxStates = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--mutation") {
            if (!parseMutation(value(), cfg.mutation)) {
                std::fprintf(stderr, "unknown mutation '%s'\n",
                             argv[i]);
                return 2;
            }
        } else {
            return usage(argv[0]);
        }
    }

    if (cfg.numNodes < 1 || cfg.numNodes > 32 || cfg.coresPerNode < 1 ||
        cfg.coresPerNode > 8 || cfg.dataLines > 8 ||
        cfg.victimBufferEntries > 8 || cfg.maxStates < 1) {
        std::fprintf(stderr,
                     "out of range: --nodes 1..32, --cores 1..8, "
                     "--lines 0..8, --vb 0..8, --max-states >= 1\n");
        return 2;
    }

    std::vector<McheckConfig> cfgs;
    if (!preset_name.empty()) {
        cfgs = preset(preset_name);
        if (cfgs.empty()) {
            std::fprintf(stderr, "unknown preset '%s'\n",
                         preset_name.c_str());
            return 2;
        }
    } else {
        cfgs.push_back(cfg);
    }

    bool all_ok = true;
    for (const McheckConfig &c : cfgs)
        all_ok &= runOne(c);
    return all_ok ? 0 : 1;
}
