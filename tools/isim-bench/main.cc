/**
 * @file
 * isim-bench: wall-clock benchmark of the simulator itself.
 *
 * Times full figure runs (host time, not simulated time) and writes a
 * schema-versioned BENCH_<date>.json so performance of the simulator
 * can be tracked commit over commit:
 *
 *   isim-bench                          bench fig05 + fig06
 *   isim-bench fig10-uni fig10-mp      bench specific figures
 *   isim-bench --quick                 small txn counts (CI smoke)
 *   isim-bench --warm-restore          time the warm-image pipeline
 *   isim-bench --sampled               also time a sampled pass
 *   isim-bench --out=bench.json        explicit output path
 *
 * Per figure, the report separates the phases of the warm-up story
 * (docs/EXECMODE.md):
 *
 *   wall_ms          cold run under the figure's default warm-up mode
 *   timing_wall_ms   cold run with --warmup-mode timing (only when
 *                    the default differs — the pre-ExecMode baseline)
 *   warmup_speedup   timing_wall_ms / wall_ms (the atomic-warm-up
 *                    end-to-end win, honest: ~1.05-1.2x)
 *   image_build_ms   --warm-restore: cold run that also saves a warm
 *                    image per bar (the pipeline's one-time cost)
 *   restore_ms       --warm-restore: the same figure measured from
 *                    those images (warm-up paid by deserialization)
 *   warm_speedup     baseline wall / restore_ms — the pipeline payoff
 *                    that dominates warm-up-heavy figures (>= 5x)
 *
 * With --sampled (or any explicit --sample-* flag) each figure also
 * runs once under sampled measurement (docs/SAMPLING.md) and the row
 * gains a "sampled" block: the sampled wall clock, the speedup over
 * the cold exact run, and — per bar — the sampled vs exact CPI and
 * total-L2-miss values with the sampled 95% CI and a within-CI
 * verdict. That block is the statistical-accuracy record the CI gate
 * checks: sampling must stay fast AND honest.
 *
 * In an ISIM_PROF build each figure row also embeds "prof": the
 * self-profiler's per-phase breakdown of the cold run (node path,
 * inclusive ns, enters — see docs/PROFILING.md), so a bench record
 * answers not just "how slow" but "where".
 *
 * The shared run flags (--txns, --warmup, --seed, --jobs, --quiet,
 * --warmup-mode, ...) apply; --quick is shorthand for a small fixed
 * workload (explicit --txns/--warmup still win). Reports are
 * suppressed — the product is the timing JSON.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/core/driver.hh"
#include "src/core/registry.hh"
#include "src/prof/profiler.hh"
#include "src/sample/spec.hh"
#include "src/stats/registry.hh"

namespace {

using namespace isim;

constexpr std::uint64_t kQuickTxns = 300;
constexpr std::uint64_t kQuickWarmup = 60;

int
usage(std::FILE *to, const char *argv0)
{
    std::fprintf(
        to,
        "usage: %s [figure-id...] [options]\n"
        "\n"
        "Times figure runs (host wall clock) and writes a "
        "BENCH_<date>.json\nrecord. Default figures: fig05 fig06.\n"
        "\nOptions:\n"
        "  --quick           small workload (%llu txns, %llu warm-up) "
        "for CI smoke\n"
        "  --warm-restore    also time the warm-image pipeline: an "
        "image-building\n"
        "                    pass (image_build_ms) and a restored "
        "rerun (restore_ms,\n"
        "                    warm_speedup)\n"
        "  --sampled         also time a sampled pass "
        "(docs/SAMPLING.md) and record\n"
        "                    per-bar CPI / L2-miss accuracy vs the "
        "exact run; the\n"
        "                    schedule comes from --sample-* (or a "
        "default derived\n"
        "                    from the transaction count)\n"
        "  --out=FILE        output path (default: BENCH_<date>.json)\n"
        "  --date=DATE       date stamp to embed (default: today, "
        "UTC)\n"
        "%s",
        argv0, static_cast<unsigned long long>(kQuickTxns),
        static_cast<unsigned long long>(kQuickWarmup),
        runOptionsHelp());
    return to == stdout ? 0 : 2;
}

std::string
todayUtc()
{
    // isim-lint: allow(determinism): date stamp is metadata only; --date overrides it for reproducible output
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buffer[16];
    std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &tm);
    return buffer;
}

/** Per-bar accuracy record of the sampled pass. */
struct SampledBar
{
    std::string name;
    double cpiFull = 0.0;
    double cpiSampled = 0.0;
    double cpiCi95 = 0.0;
    double missFull = 0.0;
    double missSampled = 0.0;
    double missCi95 = 0.0;

    double
    cpiRelErr() const
    {
        return cpiFull > 0.0
                   ? std::fabs(cpiSampled - cpiFull) / cpiFull
                   : 0.0;
    }
    bool cpiWithinCi() const
    {
        return std::fabs(cpiSampled - cpiFull) <= cpiCi95;
    }
    bool missWithinCi() const
    {
        return std::fabs(missSampled - missFull) <= missCi95;
    }
};

struct BenchRow
{
    std::string id;
    std::size_t bars = 0;
    /** The figure's default warm-up mode after --warmup-mode. */
    ExecMode warmupMode = ExecMode::Timing;
    double wallMs = 0.0;
    std::uint64_t committedTxns = 0;
    std::uint64_t simulatedNs = 0;
    /** Forced-timing-warm-up rerun; < 0 when it IS the default. */
    double timingWallMs = -1.0;
    /** Image-building pass of --warm-restore; < 0 = not measured. */
    double imageBuildMs = -1.0;
    /** Restored rerun of --warm-restore; < 0 = not measured. */
    double restoreMs = -1.0;
    /** Self-profiler breakdown of the cold run (ISIM_PROF builds). */
    std::vector<prof::ProfEntry> prof;
    /** Sampled pass of --sampled; < 0 = not measured. */
    double sampledWallMs = -1.0;
    sample::SampleSpec sampleSpec;
    std::vector<SampledBar> sampledBars;

    /** Cold-timing baseline every speedup is quoted against. */
    double baselineMs() const
    {
        return timingWallMs >= 0.0 ? timingWallMs : wallMs;
    }
};

std::string
benchToJson(const std::string &date, const RunOptions &options,
            bool quick, bool warm_restore, bool sampled,
            const std::vector<BenchRow> &rows)
{
    std::ostringstream os;
    JsonWriter json(os, 2);
    json.beginObject()
        .kv("schema", "isim-bench")
        // Version 3 added the per-figure "prof" breakdown; version 4
        // the "sampled" accuracy/speedup block (--sampled).
        .kv("version", std::uint64_t{4})
        .kv("date", date)
        .kv("quick", quick)
        .kv("warm_restore", warm_restore)
        .kv("sampled", sampled)
        .kv("jobs", std::uint64_t{options.jobs})
        .kv("txns", options.txns ? *options.txns : std::uint64_t{0})
        .kv("warmup",
            options.warmup ? *options.warmup : std::uint64_t{0});
    double total = 0.0;
    json.key("figures").beginArray();
    for (const BenchRow &row : rows) {
        total += row.wallMs;
        // Host throughput: simulated transactions retired per second
        // of wall clock — the "how fast is the simulator" number.
        const double txnsPerSec =
            row.wallMs > 0.0 ? 1e3 * static_cast<double>(
                                         row.committedTxns) /
                                   row.wallMs
                             : 0.0;
        json.beginObject()
            .kv("id", row.id)
            .kv("bars", std::uint64_t{row.bars})
            .kv("warmup_mode", execModeName(row.warmupMode))
            .kv("wall_ms", row.wallMs, 2)
            .kv("committed_txns", row.committedTxns)
            .kv("txns_per_sec", txnsPerSec, 1)
            .kv("simulated_ns", row.simulatedNs);
        if (row.timingWallMs >= 0.0) {
            // Same figure, warm-up forced back to the timing model:
            // the pre-ExecMode cost the atomic default is up against.
            json.kv("timing_wall_ms", row.timingWallMs, 2)
                .kv("warmup_speedup",
                    row.wallMs > 0.0 ? row.timingWallMs / row.wallMs
                                     : 0.0,
                    2);
        }
        if (row.imageBuildMs >= 0.0) {
            // The pipeline split (formerly one warm_wall_ms number):
            // pay image_build_ms once, then every rerun costs
            // restore_ms — warm-up traded for deserialization.
            json.kv("image_build_ms", row.imageBuildMs, 2)
                .kv("restore_ms", row.restoreMs, 2)
                .kv("warm_speedup",
                    row.restoreMs > 0.0
                        ? row.baselineMs() / row.restoreMs
                        : 0.0,
                    2);
        }
        if (row.sampledWallMs >= 0.0) {
            // The sampled pass: wall-clock win over the cold exact
            // run, plus the per-bar accuracy verdicts the CI gate
            // reads (headline metrics within the sampled 95% CI).
            bool allCpi = true;
            bool allMiss = true;
            double maxRelErr = 0.0;
            for (const SampledBar &sb : row.sampledBars) {
                allCpi = allCpi && sb.cpiWithinCi();
                allMiss = allMiss && sb.missWithinCi();
                maxRelErr = std::max(maxRelErr, sb.cpiRelErr());
            }
            json.key("sampled")
                .beginObject()
                .kv("wall_ms", row.sampledWallMs, 2)
                .kv("speedup",
                    row.sampledWallMs > 0.0
                        ? row.wallMs / row.sampledWallMs
                        : 0.0,
                    2)
                .kv("mode", sample::sampleModeName(row.sampleSpec.mode))
                .kv("ff", row.sampleSpec.ff)
                .kv("measure", row.sampleSpec.measure)
                .kv("warm", row.sampleSpec.resolvedWarm())
                .kv("windows", row.sampleSpec.windows)
                .kv("cpi_max_rel_err", maxRelErr, 4)
                .kv("all_cpi_within_ci", allCpi)
                .kv("all_miss_within_ci", allMiss);
            json.key("bars").beginArray();
            for (const SampledBar &sb : row.sampledBars) {
                json.beginObject()
                    .kv("name", sb.name)
                    .kv("cpi_full", sb.cpiFull, 4)
                    .kv("cpi_sampled", sb.cpiSampled, 4)
                    .kv("cpi_ci95", sb.cpiCi95, 4)
                    .kv("cpi_rel_err", sb.cpiRelErr(), 4)
                    .kv("cpi_within_ci", sb.cpiWithinCi())
                    .kv("miss_full", sb.missFull, 1)
                    .kv("miss_sampled", sb.missSampled, 1)
                    .kv("miss_ci95", sb.missCi95, 1)
                    .kv("miss_within_ci", sb.missWithinCi())
                    .endObject();
            }
            json.endArray();
            json.endObject();
        }
        if (!row.prof.empty()) {
            // Where the cold run's host time went (inclusive ns per
            // self-profiler node; docs/PROFILING.md).
            json.key("prof").beginArray();
            for (const prof::ProfEntry &e : row.prof) {
                json.beginObject()
                    .kv("path", e.path)
                    .kv("ns", e.ns)
                    .kv("enters", e.enters)
                    .endObject();
            }
            json.endArray();
        }
        json.endObject();
    }
    json.endArray();
    json.kv("total_wall_ms", total, 2);
    json.endObject();
    os << "\n";
    return os.str();
}

/** after - before, per node path (entries with no activity dropped). */
std::vector<prof::ProfEntry>
profDelta(const prof::ProfSnapshot &before,
          const prof::ProfSnapshot &after)
{
    std::map<std::string, prof::ProfEntry> base;
    for (const prof::ProfEntry &e : before.entries)
        base[e.path] = e;
    std::vector<prof::ProfEntry> delta;
    for (const prof::ProfEntry &e : after.entries) {
        prof::ProfEntry d = e;
        const auto it = base.find(e.path);
        if (it != base.end()) {
            d.ns -= std::min(d.ns, it->second.ns);
            d.enters -= std::min(d.enters, it->second.enters);
            d.allocs -= std::min(d.allocs, it->second.allocs);
        }
        if (d.enters > 0 || d.ns > 0)
            delta.push_back(std::move(d));
    }
    return delta;
}

/** Wall-clock one figure run under the given options. */
double
timedRun(const FigureSpec &spec, const RunOptions &options,
         FigureResult *result = nullptr)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    FigureResult r = ExperimentRunner(options).run(spec);
    const Clock::time_point stop = Clock::now();
    if (result != nullptr)
        *result = std::move(r);
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = RunOptions::fromCommandLine(argc, argv);

    bool quick = false;
    bool warmRestore = false;
    bool sampled = false;
    std::string outPath;
    std::string date = todayUtc();
    std::vector<std::string> ids;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(stdout, argv[0]);
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--warm-restore") {
            warmRestore = true;
        } else if (arg == "--sampled") {
            sampled = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            outPath = arg.substr(6);
        } else if (arg.rfind("--date=", 0) == 0) {
            date = arg.substr(7);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n\n",
                         arg.c_str());
            return usage(stderr, argv[0]);
        } else {
            ids.push_back(arg);
        }
    }
    if (ids.empty())
        ids = {"fig05", "fig06"};
    if (outPath.empty())
        outPath = "BENCH_" + date + ".json";
    if (quick) {
        if (!opts.txns)
            opts.txns = kQuickTxns;
        if (!opts.warmup)
            opts.warmup = kQuickWarmup;
    }
    opts.applyGlobal();
    // A bench in a profiling build always wants the breakdown — that
    // is the build's whole point; the default build stays untouched.
    if (prof::compiledIn())
        prof::setEnabled(true);

    // Explicit --sample-* flags imply the sampled pass; the cold and
    // warm-restore passes always measure exactly, so the base options
    // never carry the sampling schedule.
    sampled = sampled || opts.sample.enabled();
    sample::SampleSpec sampleSpec = opts.sample;
    opts.sample = sample::SampleSpec{};

    // Resolve every id before burning simulation time on any of them.
    const FigureRegistry &registry = FigureRegistry::instance();
    std::vector<const FigureEntry *> selected;
    for (const std::string &id : ids) {
        const FigureEntry *entry = registry.find(id);
        if (!entry) {
            std::fprintf(stderr,
                         "isim-bench: unknown figure id '%s' (try "
                         "`isim-fig list`)\n",
                         id.c_str());
            return 2;
        }
        selected.push_back(entry);
    }

    std::vector<BenchRow> rows;
    rows.reserve(selected.size());
    const std::string ckptDir = "bench-ckpt.tmp";
    for (const FigureEntry *entry : selected) {
        const FigureSpec spec = entry->make();

        BenchRow row;
        row.id = entry->id;
        row.bars = spec.bars.size();
        row.warmupMode = opts.effectiveWarmupMode(spec.warmupMode);

        // Cold run under the figure's effective warm-up mode. In a
        // profiling build, bracket it with global snapshots so the
        // row's "prof" breakdown covers exactly this run (the pool is
        // joined inside run(), so both snapshots are quiescent).
        const prof::ProfSnapshot before = prof::collectGlobal();
        FigureResult result;
        row.wallMs = timedRun(spec, opts, &result);
        if (prof::enabled())
            row.prof = profDelta(before, prof::collectGlobal());
        for (const RunResult &r : result.runs) {
            row.committedTxns += r.transactions;
            row.simulatedNs += r.wallTime;
        }

        if (row.warmupMode != ExecMode::Timing) {
            // The atomic-warm-up speedup column: same figure, warm-up
            // forced back to the timing model.
            RunOptions timingOpts = opts;
            timingOpts.warmupMode = ExecMode::Timing;
            row.timingWallMs = timedRun(spec, timingOpts);
        }

        if (warmRestore) {
            // Image-building pass: the cold run again, saving a warm
            // image per bar — then the restored rerun that skips the
            // warm-up entirely.
            std::filesystem::create_directories(ckptDir);
            RunOptions buildOpts = opts;
            buildOpts.saveCkptDir = ckptDir;
            row.imageBuildMs = timedRun(spec, buildOpts);
            RunOptions restoreOpts = opts;
            restoreOpts.fromCkptDir = ckptDir;
            row.restoreMs = timedRun(spec, restoreOpts);
            std::filesystem::remove_all(ckptDir);
        }

        if (sampled) {
            // Sampled pass: same figure, measurement alternating
            // fast-forward and timing windows. Without explicit
            // --sample-* flags the schedule derives from the
            // transaction count: 8 periods, each measuring 1/8 of its
            // span after a half-window atomic re-warm.
            const std::uint64_t txns =
                opts.txns ? *opts.txns
                          : spec.bars.front().config.workload
                                .transactions;
            sample::SampleSpec ss = sampleSpec;
            if (!ss.enabled()) {
                const std::uint64_t period =
                    std::max<std::uint64_t>(txns / 8, 16);
                ss.measure = std::max<std::uint64_t>(period / 8, 8);
                ss.ff = period - ss.measure;
                ss.warm = ss.measure / 2;
            }
            RunOptions sampleOpts = opts;
            sampleOpts.sample = ss;
            FigureResult sr;
            row.sampledWallMs = timedRun(spec, sampleOpts, &sr);
            row.sampleSpec = ss;
            for (std::size_t i = 0; i < sr.runs.size(); ++i) {
                const RunResult &s = sr.runs[i];
                const RunResult &f = result.runs[i];
                SampledBar sb;
                sb.name = s.name;
                if (const stats::Sample *v =
                        stats::findSample(f.stats, "cpu.cpi"))
                    sb.cpiFull = v->number();
                if (const stats::Sample *v =
                        stats::findSample(s.stats, "cpu.cpi"))
                    sb.cpiSampled = v->number();
                if (const stats::Sample *v =
                        stats::findSample(f.stats, "l2.miss.total"))
                    sb.missFull = v->number();
                if (const stats::Sample *v =
                        stats::findSample(s.stats, "l2.miss.total"))
                    sb.missSampled = v->number();
                if (const sample::StatCi *ci =
                        s.sampling.find("cpu.cpi"))
                    sb.cpiCi95 = ci->ci95;
                if (const sample::StatCi *ci =
                        s.sampling.find("l2.miss.total"))
                    sb.missCi95 = ci->ci95;
                // The echo carries the resolved window count.
                row.sampleSpec.windows = s.sampling.windows;
                row.sampledBars.push_back(std::move(sb));
            }
        }

        rows.push_back(row);
        if (row.sampledWallMs >= 0.0) {
            std::printf("%-12s %8.1f ms exact / %8.1f ms sampled "
                        "(%.2fx, cpi err %.1f%%)\n",
                        row.id.c_str(), row.wallMs, row.sampledWallMs,
                        row.sampledWallMs > 0.0
                            ? row.wallMs / row.sampledWallMs
                            : 0.0,
                        100.0 * [&row] {
                            double m = 0.0;
                            for (const SampledBar &sb : row.sampledBars)
                                m = std::max(m, sb.cpiRelErr());
                            return m;
                        }());
        }
        if (row.restoreMs >= 0.0) {
            std::printf("%-12s %8.1f ms cold / %8.1f ms build / "
                        "%8.1f ms restored  (%zu bars, %llu txns)\n",
                        row.id.c_str(), row.wallMs, row.imageBuildMs,
                        row.restoreMs, row.bars,
                        static_cast<unsigned long long>(
                            row.committedTxns));
        } else {
            std::printf("%-12s %8.1f ms  (%zu bars, %llu txns, "
                        "%s warm-up)\n",
                        row.id.c_str(), row.wallMs, row.bars,
                        static_cast<unsigned long long>(
                            row.committedTxns),
                        execModeName(row.warmupMode));
        }
    }

    const std::string doc =
        benchToJson(date, opts, quick, warmRestore, sampled, rows);
    std::string err;
    if (!jsonValidate(doc, &err))
        isim_panic("bench JSON does not validate: %s", err.c_str());
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "isim-bench: cannot write '%s'\n",
                     outPath.c_str());
        return 1;
    }
    out << doc;
    if (!out) {
        std::fprintf(stderr, "isim-bench: write to '%s' failed\n",
                     outPath.c_str());
        return 1;
    }
    std::printf("bench written to %s\n", outPath.c_str());
    return 0;
}
