/**
 * @file
 * isim-lint — the repo-specific static analyzer.
 *
 * Walks the given files/directories (*.cc, *.hh, *.cpp), runs the
 * rule set described in docs/LINTING.md, and prints findings as
 * `path:line: [rule] message`.
 *
 * Exit status (CI-consumable):
 *   0  clean
 *   1  findings
 *   2  usage error or unreadable input
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/lint/linter.hh"

namespace {

namespace fs = std::filesystem;
using isim::lint::Finding;
using isim::lint::Linter;
using isim::lint::RuleInfo;
using isim::lint::SourceFile;

int
usage(const char *argv0, bool to_stdout)
{
    std::FILE *to = to_stdout ? stdout : stderr;
    std::fprintf(
        to,
        "usage: %s [options] <file-or-dir>...\n"
        "\n"
        "Repo-specific static analysis for IntegraSim: determinism\n"
        "sources, ordered serialization output, checkpoint and stats\n"
        "coverage, logging discipline. See docs/LINTING.md.\n"
        "\n"
        "options:\n"
        "  --list-rules   print the rule catalogue and exit\n"
        "  -q, --quiet    print only the summary line\n"
        "  -h, --help     this message\n"
        "\n"
        "Directories are walked recursively for *.cc/*.hh/*.cpp;\n"
        "build*/, .git/ and lint_fixtures/ (deliberate-violation\n"
        "test inputs) are skipped. Exit status: 0 clean, 1 findings,\n"
        "2 usage/IO error.\n",
        argv0);
    return to_stdout ? 0 : 2;
}

int
listRules()
{
    for (const RuleInfo &rule : Linter::rules()) {
        std::printf("%-15s %s\n", rule.id, rule.summary);
        std::printf("%-15s %s\n\n", "", rule.detail);
    }
    std::printf("suppress with:  // isim-lint: allow(<rule>): "
                "<reason>\n");
    std::printf("transients:     // ckpt: transient(<member>): "
                "<optional reason>\n");
    return 0;
}

bool
skippedDir(const fs::path &path)
{
    const std::string name = path.filename().string();
    return name == ".git" || name.rfind("build", 0) == 0 ||
           name == "lint_fixtures";
}

bool
lintableFile(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp";
}

/** Deterministic recursive collection of lintable files. */
void
collect(const fs::path &path, std::vector<std::string> &out)
{
    if (fs::is_directory(path)) {
        std::vector<fs::path> entries;
        for (const auto &entry : fs::directory_iterator(path))
            entries.push_back(entry.path());
        std::sort(entries.begin(), entries.end());
        for (const fs::path &entry : entries) {
            if (fs::is_directory(entry)) {
                if (!skippedDir(entry))
                    collect(entry, out);
            } else if (lintableFile(entry)) {
                out.push_back(entry.generic_string());
            }
        }
        return;
    }
    // Explicitly named files are linted regardless of extension.
    out.push_back(path.generic_string());
}

} // namespace

int
main(int argc, char **argv)
{
    bool quiet = false;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list-rules") == 0)
            return listRules();
        if (std::strcmp(arg, "-q") == 0 ||
            std::strcmp(arg, "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(arg, "-h") == 0 ||
                   std::strcmp(arg, "--help") == 0) {
            return usage(argv[0], true);
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg);
            return usage(argv[0], false);
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty())
        return usage(argv[0], false);

    std::vector<std::string> paths;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (!fs::exists(root, ec)) {
            std::fprintf(stderr, "isim-lint: no such path: %s\n",
                         root.c_str());
            return 2;
        }
        collect(root, paths);
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    Linter linter;
    for (const std::string &path : paths) {
        SourceFile file;
        std::string error;
        if (!SourceFile::load(path, file, error)) {
            std::fprintf(stderr, "isim-lint: %s\n", error.c_str());
            return 2;
        }
        linter.addFile(std::move(file));
    }

    const std::vector<Finding> findings = linter.run();
    if (!quiet)
        for (const Finding &finding : findings)
            std::printf("%s\n", Linter::format(finding).c_str());
    std::printf("isim-lint: %zu finding%s in %zu files\n",
                findings.size(), findings.size() == 1 ? "" : "s",
                paths.size());
    return findings.empty() ? 0 : 1;
}
