/**
 * @file
 * isim-fig — the figure multiplexer. One binary that can list and
 * run every figure, ablation, and extension experiment in the
 * FigureRegistry, so new experiments need a registry entry instead
 * of a new bench binary + CMake target.
 *
 * Usage:
 *   isim-fig list
 *   isim-fig run <id|prefix|all>... [options]
 *
 * Ids resolve exactly first, then by prefix ("fig10" runs fig10-uni
 * and fig10-mp; "ablation" runs every ablation). Options are the
 * shared run flags (--txns, --warmup, --seed, --jobs, --json-dir,
 * --quiet, --audit-period) and the observability capture flags; the
 * ISIM_* environment variables are fallbacks for the same knobs.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/config/options.hh"
#include "src/core/driver.hh"
#include "src/core/registry.hh"

namespace {

using isim::FigureEntry;
using isim::FigureRegistry;
using isim::RunOptions;

int
usage(std::FILE *to, const char *argv0)
{
    std::fprintf(
        to,
        "usage: %s list\n"
        "       %s run <id|prefix|all>... [options]\n"
        "\n"
        "Runs figures/ablations/extensions from the registry and "
        "prints the\npaper-style reports. Bars of a figure run "
        "concurrently (--jobs).\n"
        "\nOptions:\n%s%s"
        "\nEnvironment fallbacks: ISIM_TXNS, ISIM_WARMUP, ISIM_SEED, "
        "ISIM_JOBS,\nISIM_JSON_DIR, ISIM_AUDIT_PERIOD (flags win).\n",
        argv0, argv0, isim::runOptionsHelp(), isim::obsOptionsHelp());
    return to == stdout ? 0 : 2;
}

int
list()
{
    const FigureRegistry &registry = FigureRegistry::instance();
    std::size_t width = 0;
    for (const FigureEntry &e : registry.entries())
        width = std::max(width, e.id.size());
    for (const FigureEntry &e : registry.entries()) {
        std::printf("%-*s  %s\n", static_cast<int>(width),
                    e.id.c_str(), e.description.c_str());
    }
    return 0;
}

int
run(const std::vector<std::string> &ids, const RunOptions &opts)
{
    // Resolve everything up front (and dedupe, preserving catalog
    // order) so an unknown id fails before hours of simulation.
    const FigureRegistry &registry = FigureRegistry::instance();
    std::vector<const FigureEntry *> selected;
    for (const std::string &id : ids) {
        std::vector<const FigureEntry *> matches;
        if (id == "all") {
            for (const FigureEntry &e : registry.entries())
                matches.push_back(&e);
        } else {
            matches = registry.resolve(id);
        }
        if (matches.empty()) {
            std::fprintf(stderr,
                         "unknown figure id '%s' (try `isim-fig "
                         "list`)\n",
                         id.c_str());
            return 2;
        }
        for (const FigureEntry *e : matches) {
            if (std::find(selected.begin(), selected.end(), e) ==
                selected.end()) {
                selected.push_back(e);
            }
        }
    }
    for (const FigureEntry *e : selected) {
        const int rc = isim::runFigureAndPrint(e->make(), opts);
        if (rc != 0)
            return rc;
        if (!e->note.empty())
            std::printf("%s", e->note.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions opts = RunOptions::fromCommandLine(argc, argv);

    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h")
            return usage(stdout, argv[0]);
    }
    if (args.empty())
        return usage(stderr, argv[0]);

    const std::string &command = args.front();
    if (command == "list") {
        if (args.size() != 1) {
            std::fprintf(stderr, "list takes no arguments\n");
            return 2;
        }
        return list();
    }
    if (command == "run") {
        const std::vector<std::string> ids(args.begin() + 1,
                                           args.end());
        if (ids.empty()) {
            std::fprintf(stderr,
                         "run needs at least one figure id\n");
            return usage(stderr, argv[0]);
        }
        for (const std::string &id : ids) {
            if (!id.empty() && id[0] == '-') {
                std::fprintf(stderr, "unknown option '%s'\n",
                             id.c_str());
                return usage(stderr, argv[0]);
            }
        }
        return run(ids, opts);
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(stderr, argv[0]);
}
