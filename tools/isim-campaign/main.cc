/**
 * @file
 * isim-campaign — run an entire design-space study as one resumable
 * job (see docs/CAMPAIGN.md).
 *
 * Usage:
 *   isim-campaign run    <spec.json> --out DIR [--procs N]
 *                        [--stop-after K] [run options]
 *   isim-campaign expand <spec.json> [run options]
 *   isim-campaign status <spec.json> --out DIR [run options]
 *
 * `run` executes (or resumes) the campaign: completed cells found in
 * the output directory are skipped, the rest are leased to worker
 * processes (--procs) and the results merged into a campaign.json
 * that isim-stat consumes. `expand` prints the bar plan — names,
 * content-address keys, checkpoint groups — without running
 * anything. `status` reports how much of the campaign is already in
 * the cache.
 *
 * The internal `--worker` mode (spawned by `run`, not for humans)
 * serves leases over stdin/stdout.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/json.hh"
#include "src/campaign/cache.hh"
#include "src/campaign/queue.hh"
#include "src/campaign/supervisor.hh"
#include "src/campaign/worker.hh"
#include "src/stats/manifest.hh"

namespace {

using namespace isim;

int
usage(std::FILE *to, const char *argv0)
{
    std::fprintf(
        to,
        "usage: %s run    <spec.json> --out DIR [options]\n"
        "       %s expand <spec.json> [options]\n"
        "       %s status <spec.json> --out DIR [options]\n"
        "\n"
        "Runs a campaign spec (schema \"isim-campaign\") as one "
        "resumable job:\ncompleted cells are skipped on rerun, bars "
        "sharing a warm image are\nbuilt once and restored many "
        "times, and the merged campaign.json is a\nregular isim-stats "
        "manifest. See docs/CAMPAIGN.md.\n"
        "\nCampaign options:\n"
        "  --out=DIR            campaign output/cache directory "
        "(required)\n"
        "  --stop-after=K       stop after K lease completions, exit "
        "3 (resume\n                       testing)\n"
        "  --watch              (status) poll every 2s until no cell "
        "is pending\n"
        "\nRun options (shared with isim-fig):\n%s",
        argv0, argv0, argv0, runOptionsHelp());
    return to == stdout ? 0 : 2;
}

/** Consume `--flag VALUE` / `--flag=VALUE` from an arg list. */
bool
takeValue(std::vector<std::string> &args, std::size_t &i,
          const char *flag, std::string &value)
{
    const std::string &arg = args[i];
    const std::size_t n = std::strlen(flag);
    if (arg.compare(0, n, flag) != 0)
        return false;
    if (arg.size() > n && arg[n] == '=') {
        value = arg.substr(n + 1);
        args.erase(args.begin() + static_cast<long>(i));
        return true;
    }
    if (arg.size() != n)
        return false;
    if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    value = args[i + 1];
    args.erase(args.begin() + static_cast<long>(i),
               args.begin() + static_cast<long>(i) + 2);
    return true;
}

int
cmdExpand(const std::string &spec_path, const RunOptions &opts)
{
    const campaign::CampaignSpec spec =
        campaign::loadCampaignSpec(spec_path);
    const campaign::CampaignPlan plan =
        campaign::expandCampaign(spec, opts);
    std::printf("campaign '%s': %zu bars, %zu checkpoint groups\n",
                spec.name.c_str(), plan.bars.size(),
                plan.groups.size());
    for (const campaign::CampaignBar &bar : plan.bars) {
        const char *role = "";
        const auto it = plan.groups.find(bar.groupKey);
        if (it != plan.groups.end()) {
            role = it->second.front() == bar.index ? "  [builds image]"
                                                   : "  [restores]";
        }
        if (bar.aliasOf != campaign::kNoAlias) {
            std::printf("%4zu  %-40s key=%s  alias of %zu\n",
                        bar.index, bar.name.c_str(), bar.key.c_str(),
                        bar.aliasOf);
            continue;
        }
        std::printf("%4zu  %-40s key=%s  group=%s%s\n", bar.index,
                    bar.name.c_str(), bar.key.c_str(),
                    bar.groupKey.c_str(), role);
    }
    return 0;
}

/**
 * Bars campaign.json recorded as failed, keyed by content address.
 * A failed bar has no cached result file, so without this a crashed
 * cell is indistinguishable from one that simply has not run yet.
 */
std::map<std::string, std::string>
failedBars(const std::string &out_dir)
{
    std::map<std::string, std::string> failed;
    std::ifstream in(out_dir + "/campaign.json", std::ios::binary);
    if (!in)
        return failed;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    if (!jsonParse(buffer.str(), doc, nullptr))
        return failed;
    for (const stats::BarMetaView &view : stats::manifestMeta(doc)) {
        if (view.meta.status == "failed")
            failed.emplace(view.meta.key, view.bar);
    }
    return failed;
}

int
cmdStatus(const std::string &spec_path, const std::string &out_dir,
          const RunOptions &opts, bool watch)
{
    // The same read-only drift test `run` refuses resume on: a status
    // check against the wrong study must fail loudly, not report a
    // plausible-looking cache fill.
    if (campaign::specDrift(spec_path, out_dir) ==
        campaign::SpecDrift::Drifted) {
        std::fprintf(stderr,
                     "isim-campaign: '%s' was created for a different "
                     "spec than '%s' (spec drift); `run` would refuse "
                     "to resume here\n",
                     out_dir.c_str(), spec_path.c_str());
        return 2;
    }

    const campaign::CampaignSpec spec =
        campaign::loadCampaignSpec(spec_path);
    const campaign::CampaignPlan plan =
        campaign::expandCampaign(spec, opts);

    struct Counts
    {
        std::size_t cached = 0;
        std::size_t pending = 0;
        std::size_t failed = 0;
    };

    for (;;) {
        const std::map<std::string, std::string> failed =
            failedBars(out_dir);
        std::vector<std::string> figureOrder;
        std::map<std::string, Counts> byFigure;
        Counts total;
        for (const campaign::CampaignBar &bar : plan.bars) {
            if (bar.aliasOf != campaign::kNoAlias)
                continue; // aliases share their primary's fate
            if (byFigure.find(bar.figureId) == byFigure.end())
                figureOrder.push_back(bar.figureId);
            Counts &fig = byFigure[bar.figureId];
            const char *state = "pending";
            if (campaign::barResultCached(
                    campaign::barStatsPath(out_dir, bar.key),
                    bar.key)) {
                state = "cached";
                ++fig.cached;
                ++total.cached;
            } else if (failed.count(bar.key) != 0) {
                state = "failed";
                ++fig.failed;
                ++total.failed;
            } else {
                ++fig.pending;
                ++total.pending;
            }
            if (!watch)
                std::printf("%-8s %s\n", state, bar.name.c_str());
        }
        for (const std::string &figure : figureOrder) {
            const Counts &c = byFigure[figure];
            std::printf("  %-24s %zu cached, %zu pending, %zu "
                        "failed\n",
                        figure.c_str(), c.cached, c.pending,
                        c.failed);
        }
        std::printf("campaign '%s': %zu cached, %zu pending, %zu "
                    "failed\n",
                    spec.name.c_str(), total.cached, total.pending,
                    total.failed);
        if (!watch || total.pending == 0) {
            return total.pending == 0 && total.failed == 0 ? 0 : 1;
        }
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::seconds(2));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const char *argv0 = argv[0];
    RunOptions opts = RunOptions::fromCommandLine(argc, argv);

    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h")
            return usage(stdout, argv0);
    }

    // Campaign-specific flags (RunOptions left the rest to us).
    std::string outDir;
    std::string stopAfterText;
    bool worker = false;
    bool watch = false;
    std::string specFlag;
    for (std::size_t i = 0; i < args.size();) {
        if (args[i] == "--worker") {
            worker = true;
            args.erase(args.begin() + static_cast<long>(i));
            continue;
        }
        if (args[i] == "--watch") {
            watch = true;
            args.erase(args.begin() + static_cast<long>(i));
            continue;
        }
        if (takeValue(args, i, "--out", outDir) ||
            takeValue(args, i, "--spec", specFlag) ||
            takeValue(args, i, "--stop-after", stopAfterText)) {
            continue;
        }
        ++i;
    }

    if (worker) {
        if (specFlag.empty() || outDir.empty()) {
            std::fprintf(stderr,
                         "--worker needs --spec and --out\n");
            return 2;
        }
        return campaign::workerMain(specFlag, outDir, opts);
    }

    if (args.empty())
        return usage(stderr, argv0);
    const std::string command = args.front();
    args.erase(args.begin());

    if (args.size() != 1 || args.front().empty() ||
        args.front()[0] == '-') {
        std::fprintf(stderr, "%s needs exactly one spec file\n",
                     command.c_str());
        return usage(stderr, argv0);
    }
    const std::string specPath = args.front();

    if (command == "expand")
        return cmdExpand(specPath, opts);
    if (command == "status") {
        if (outDir.empty()) {
            std::fprintf(stderr, "status needs --out\n");
            return 2;
        }
        return cmdStatus(specPath, outDir, opts, watch);
    }
    if (command == "run") {
        if (outDir.empty()) {
            std::fprintf(stderr, "run needs --out\n");
            return 2;
        }
        campaign::CampaignRunConfig config;
        config.specPath = specPath;
        config.outDir = outDir;
        config.exePath = argv0;
        config.options = opts;
        if (!stopAfterText.empty()) {
            char *end = nullptr;
            const long v = std::strtol(stopAfterText.c_str(), &end, 10);
            if (end == stopAfterText.c_str() || *end != '\0' ||
                v < 0) {
                std::fprintf(stderr,
                             "--stop-after: expected a non-negative "
                             "integer\n");
                return 2;
            }
            config.stopAfter = v;
        }
        opts.applyGlobal();
        return campaign::runCampaign(config);
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(stderr, argv0);
}
