/**
 * @file
 * isim-prof: inspect and compare prof.json self-profiles.
 *
 * A profiling run (--prof-out=FILE, ISIM_PROF build) writes the
 * schema-versioned host-side profile this tool consumes:
 *
 *   isim-prof dump   prof.json            every node, one per line
 *   isim-prof top    prof.json [-n N]     hottest N nodes by self time
 *   isim-prof diff   A B [--tolerance=R]  compare two profiles
 *   isim-prof stacks prof.json            collapsed-stack export
 *
 * `diff` treats the two kinds of columns differently: enter and
 * allocation counts are deterministic, so they must match exactly;
 * self times are host wall time and never reproduce bit-for-bit, so
 * they compare under a relative tolerance (default 0.25). Exit 1 on
 * drift, 2 when either profile is disabled or empty.
 *
 * `stacks` emits the folded format flamegraph tooling eats: one line
 * per node, `a;b;c <self_ns>`, zero-self-time nodes skipped.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/prof/profiler.hh"

namespace {

using namespace isim;

struct ProfNode
{
    std::string path;
    std::uint64_t ns = 0;
    std::uint64_t selfNs = 0;
    std::uint64_t enters = 0;
    std::uint64_t alloc = 0;
};

struct Profile
{
    bool enabled = false;
    std::uint64_t totalNs = 0;
    std::vector<ProfNode> nodes;
};

int
usage(std::ostream &os, int rc)
{
    os << "usage: isim-prof <command> ...\n\n"
          "commands:\n"
          "  dump FILE                  every node as `path ns self_ns "
          "enters alloc`\n"
          "  top FILE [-n N]            hottest N nodes by self time "
          "(default 10)\n"
          "  diff A B [--tolerance=R]   compare profiles; counts must "
          "match exactly,\n"
          "                             self times within R (default "
          "0.25); exit 1 on\n"
          "                             drift, 2 when either side is "
          "disabled/empty\n"
          "  stacks FILE                collapsed stacks "
          "(`a;b;c self_ns`) for\n"
          "                             flamegraph tooling\n";
    return rc;
}

std::uint64_t
asUint(const JsonValue &v)
{
    return v.isNumber() && v.number >= 0.0
               ? static_cast<std::uint64_t>(v.number)
               : 0;
}

/** Read and validate a prof.json document. */
Profile
loadProfile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "isim-prof: cannot open '" << path << "'\n";
        std::exit(1);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    std::string err;
    if (!jsonParse(buffer.str(), doc, &err)) {
        std::cerr << "isim-prof: " << path << ": " << err << "\n";
        std::exit(1);
    }
    const JsonValue *schema = doc.get("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->text != "isim-prof") {
        std::cerr << "isim-prof: '" << path
                  << "' is not an isim-prof profile\n";
        std::exit(1);
    }
    const JsonValue *version = doc.get("version");
    if (version == nullptr || !version->isNumber() ||
        static_cast<int>(version->number) > prof::kProfSchemaVersion) {
        std::cerr << "isim-prof: '" << path
                  << "' has an unsupported schema version\n";
        std::exit(1);
    }

    Profile p;
    const JsonValue *enabled = doc.get("enabled");
    p.enabled = enabled != nullptr && enabled->kind ==
                                          JsonValue::Kind::Bool &&
                enabled->boolean;
    const JsonValue *total = doc.get("total_ns");
    if (total != nullptr)
        p.totalNs = asUint(*total);
    const JsonValue *nodes = doc.get("nodes");
    if (nodes != nullptr && nodes->isArray()) {
        for (const JsonValue &n : nodes->array) {
            if (!n.isObject())
                continue;
            ProfNode node;
            const JsonValue *nodePath = n.get("path");
            if (nodePath == nullptr || !nodePath->isString())
                continue;
            node.path = nodePath->text;
            node.ns = asUint(n.at("ns"));
            node.selfNs = asUint(n.at("self_ns"));
            node.enters = asUint(n.at("enters"));
            node.alloc = asUint(n.at("alloc"));
            p.nodes.push_back(std::move(node));
        }
    }
    return p;
}

double
parseTolerance(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0) {
        std::cerr << "isim-prof: --tolerance: expected a non-negative "
                     "number, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return v;
}

void
printNode(const ProfNode &n)
{
    char line[320];
    std::snprintf(line, sizeof(line),
                  "%-32s %12llu %12llu %10llu %10llu\n",
                  n.path.c_str(),
                  static_cast<unsigned long long>(n.ns),
                  static_cast<unsigned long long>(n.selfNs),
                  static_cast<unsigned long long>(n.enters),
                  static_cast<unsigned long long>(n.alloc));
    std::fputs(line, stdout);
}

int
cmdDump(const std::string &path)
{
    const Profile p = loadProfile(path);
    std::printf("# enabled=%s total_ns=%llu nodes=%zu\n",
                p.enabled ? "true" : "false",
                static_cast<unsigned long long>(p.totalNs),
                p.nodes.size());
    std::printf("%-32s %12s %12s %10s %10s\n", "path", "ns", "self_ns",
                "enters", "alloc");
    for (const ProfNode &n : p.nodes)
        printNode(n);
    return 0;
}

int
cmdTop(const std::string &path, std::size_t count)
{
    const Profile p = loadProfile(path);
    if (!p.enabled || p.nodes.empty()) {
        std::cerr << "isim-prof: '" << path
                  << "' holds no profile data (run with --prof-out "
                     "in an ISIM_PROF build)\n";
        return 2;
    }
    std::uint64_t totalSelf = 0;
    for (const ProfNode &n : p.nodes)
        totalSelf += n.selfNs;
    std::vector<ProfNode> sorted = p.nodes;
    // Path is the tiebreak so equal-self-time rows print stably.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ProfNode &a, const ProfNode &b) {
                         if (a.selfNs != b.selfNs)
                             return a.selfNs > b.selfNs;
                         return a.path < b.path;
                     });
    if (sorted.size() > count)
        sorted.resize(count);
    for (const ProfNode &n : sorted) {
        const double share =
            totalSelf > 0 ? 100.0 * static_cast<double>(n.selfNs) /
                                static_cast<double>(totalSelf)
                          : 0.0;
        char line[320];
        std::snprintf(line, sizeof(line),
                      "%-32s %12llu ns  %5.1f%%  %10llu enters\n",
                      n.path.c_str(),
                      static_cast<unsigned long long>(n.selfNs), share,
                      static_cast<unsigned long long>(n.enters));
        std::fputs(line, stdout);
    }
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB,
        double tolerance)
{
    const Profile a = loadProfile(pathA);
    const Profile b = loadProfile(pathB);
    if (!a.enabled || a.nodes.empty() || !b.enabled ||
        b.nodes.empty()) {
        std::cerr << "isim-prof: '"
                  << (!a.enabled || a.nodes.empty() ? pathA : pathB)
                  << "' holds no profile data; refusing to compare\n";
        return 2;
    }

    std::map<std::string, ProfNode> byPath;
    for (const ProfNode &n : a.nodes)
        byPath[n.path] = n;

    std::size_t problems = 0;
    const auto report = [&](const std::string &what) {
        std::cout << what << "\n";
        ++problems;
    };

    for (const ProfNode &nb : b.nodes) {
        const auto it = byPath.find(nb.path);
        if (it == byPath.end()) {
            report(nb.path + " only in " + pathB);
            continue;
        }
        const ProfNode na = it->second;
        byPath.erase(it);
        if (na.enters != nb.enters) {
            report(nb.path + " enters " + std::to_string(na.enters) +
                   " -> " + std::to_string(nb.enters));
        }
        if (na.alloc != nb.alloc) {
            report(nb.path + " alloc " + std::to_string(na.alloc) +
                   " -> " + std::to_string(nb.alloc));
        }
        const double hi = static_cast<double>(
            std::max(na.selfNs, nb.selfNs));
        const double delta = static_cast<double>(
            na.selfNs > nb.selfNs ? na.selfNs - nb.selfNs
                                  : nb.selfNs - na.selfNs);
        if (hi > 0.0 && delta / hi > tolerance) {
            char line[320];
            std::snprintf(line, sizeof(line),
                          "%s self_ns %llu -> %llu (rel %.3g > %.3g)",
                          nb.path.c_str(),
                          static_cast<unsigned long long>(na.selfNs),
                          static_cast<unsigned long long>(nb.selfNs),
                          delta / hi, tolerance);
            report(line);
        }
    }
    for (const auto &left : byPath)
        report(left.first + " only in " + pathA);

    if (problems == 0) {
        std::cout << a.nodes.size() << " nodes match (tolerance "
                  << tolerance << ")\n";
        return 0;
    }
    std::cout << problems << " differences\n";
    return 1;
}

int
cmdStacks(const std::string &path)
{
    const Profile p = loadProfile(path);
    if (!p.enabled || p.nodes.empty()) {
        std::cerr << "isim-prof: '" << path
                  << "' holds no profile data\n";
        return 2;
    }
    for (const ProfNode &n : p.nodes) {
        if (n.selfNs == 0)
            continue;
        std::string folded = n.path;
        std::replace(folded.begin(), folded.end(), '/', ';');
        std::cout << folded << " "
                  << static_cast<unsigned long long>(n.selfNs) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        return usage(std::cout, 0);
    }
    if (argc < 3)
        return usage(std::cerr, 2);

    const std::string command = argv[1];
    if (command == "dump") {
        if (argc != 3)
            return usage(std::cerr, 2);
        return cmdDump(argv[2]);
    }
    if (command == "top") {
        std::size_t count = 10;
        if (argc == 5 && std::strcmp(argv[3], "-n") == 0) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(argv[4], &end, 10);
            if (end == argv[4] || *end != '\0' || v == 0) {
                std::cerr << "isim-prof: -n: expected a positive "
                             "integer, got '"
                          << argv[4] << "'\n";
                return 2;
            }
            count = v;
        } else if (argc != 3) {
            return usage(std::cerr, 2);
        }
        return cmdTop(argv[2], count);
    }
    if (command == "diff") {
        if (argc < 4)
            return usage(std::cerr, 2);
        double tolerance = 0.25;
        for (int i = 4; i < argc; ++i) {
            const char *arg = argv[i];
            const char *prefix = "--tolerance=";
            if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) {
                tolerance = parseTolerance(arg + std::strlen(prefix));
            } else {
                std::cerr << "isim-prof: unknown option '" << arg
                          << "'\n\n";
                return usage(std::cerr, 2);
            }
        }
        return cmdDiff(argv[2], argv[3], tolerance);
    }
    if (command == "stacks") {
        if (argc != 3)
            return usage(std::cerr, 2);
        return cmdStacks(argv[2]);
    }
    std::cerr << "isim-prof: unknown command '" << command << "'\n\n";
    return usage(std::cerr, 2);
}
