/**
 * @file
 * itrace: inspect and convert observability captures.
 *
 * A figure binary run with --trace-bin=FILE writes the binary capture
 * this tool consumes:
 *
 *   itrace summary capture.bin              per-kind event counts
 *   itrace dump    capture.bin              one line per event
 *   itrace chrome  capture.bin -o out.json  Chrome trace_event JSON
 *   itrace csv     capture.bin -o out.csv   flat event CSV
 *
 * Filters (apply to every command): --kind=NAME, --cpu=N, --from=TICK,
 * --to=TICK (ns, inclusive/exclusive), --limit=N.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/base/logging.hh"
#include "src/obs/event.hh"
#include "src/obs/export.hh"

namespace {

using namespace isim;
using namespace isim::obs;

int
usage(std::ostream &os, int rc)
{
    os << "usage: itrace <command> <capture.bin> [options]\n\n"
          "commands:\n"
          "  summary   per-kind event counts and the capture's span\n"
          "  dump      one text line per event\n"
          "  chrome    convert to Chrome trace_event JSON (Perfetto)\n"
          "  csv       convert to a flat event CSV\n\n"
          "options:\n"
          "  --kind=NAME   keep only events of this kind (e.g. "
          "TxnCommit)\n"
          "  --cpu=N       keep only events from this core/node\n"
          "  --from=TICK   keep events at tick >= TICK (ns)\n"
          "  --to=TICK     keep events at tick < TICK (ns)\n"
          "  --limit=N     keep at most the first N events (after "
          "filters)\n"
          "  --quiet       suppress warnings (e.g. dropped-events)\n"
          "  -o FILE       write output to FILE instead of stdout\n";
    return rc;
}

bool
flagValue(const char *arg, const char *flag, std::string &value)
{
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=')
        return false;
    value = arg + n + 1;
    return true;
}

std::uint64_t
parseUint(const std::string &text, const char *what)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        std::cerr << "itrace: " << what << ": expected an integer, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return v;
}

bool
kindFromName(const std::string &name, EventKind &out)
{
    for (unsigned k = 0; k < numEventKinds; ++k) {
        const auto kind = static_cast<EventKind>(k);
        if (name == eventKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

void
dumpEvents(std::ostream &os, const std::vector<TraceEvent> &events)
{
    for (const TraceEvent &e : events) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%12llu ns %-14s %-6s cpu=%-3u cls=0x%02x "
                      "arg=%-6u dur=%llu addr=0x%llx\n",
                      static_cast<unsigned long long>(e.tick),
                      eventKindName(e.kind), eventKindCategory(e.kind),
                      unsigned{e.cpu}, unsigned{e.cls},
                      unsigned{e.arg},
                      static_cast<unsigned long long>(e.dur),
                      static_cast<unsigned long long>(e.addr));
        os << line;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        return usage(std::cout, 0);
    }
    if (argc < 3)
        return usage(std::cerr, 2);

    const std::string command = argv[1];
    const std::string path = argv[2];
    if (command != "summary" && command != "dump" &&
        command != "chrome" && command != "csv") {
        std::cerr << "itrace: unknown command '" << command << "'\n\n";
        return usage(std::cerr, 2);
    }

    bool haveKind = false;
    EventKind kind = EventKind::MissIssued;
    std::uint64_t cpu = ~0ull;
    std::uint64_t from = 0, to = ~0ull, limit = ~0ull;
    std::string outPath;
    for (int i = 3; i < argc; ++i) {
        std::string v;
        if (flagValue(argv[i], "--kind", v)) {
            if (!kindFromName(v, kind)) {
                std::cerr << "itrace: unknown event kind '" << v
                          << "'; kinds are:";
                for (unsigned k = 0; k < numEventKinds; ++k) {
                    std::cerr << ' '
                              << eventKindName(static_cast<EventKind>(k));
                }
                std::cerr << "\n";
                return 2;
            }
            haveKind = true;
        } else if (flagValue(argv[i], "--cpu", v)) {
            cpu = parseUint(v, "--cpu");
        } else if (flagValue(argv[i], "--from", v)) {
            from = parseUint(v, "--from");
        } else if (flagValue(argv[i], "--to", v)) {
            to = parseUint(v, "--to");
        } else if (flagValue(argv[i], "--limit", v)) {
            limit = parseUint(v, "--limit");
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            setQuiet(true);
        } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::cerr << "itrace: unknown option '" << argv[i]
                      << "'\n\n";
            return usage(std::cerr, 2);
        }
    }

    CaptureHeader header;
    std::vector<TraceEvent> events;
    std::string err;
    if (!readCapture(path, header, events, err)) {
        std::cerr << "itrace: " << err << "\n";
        return 1;
    }

    std::vector<TraceEvent> kept;
    kept.reserve(events.size());
    for (const TraceEvent &e : events) {
        if (haveKind && e.kind != kind)
            continue;
        if (cpu != ~0ull && e.cpu != cpu)
            continue;
        if (e.tick < from || e.tick >= to)
            continue;
        if (kept.size() >= limit)
            break;
        kept.push_back(e);
    }

    std::ofstream file;
    if (!outPath.empty()) {
        file.open(outPath);
        if (!file) {
            std::cerr << "itrace: cannot open '" << outPath << "'\n";
            return 1;
        }
    }
    std::ostream &os = outPath.empty() ? std::cout : file;

    const std::uint64_t dropped = header.pushed - header.count;
    if (command == "summary") {
        os << "capture: " << path << "\n";
        writeSummary(os, kept, dropped, header.capacity);
    } else if (command == "dump") {
        dumpEvents(os, kept);
    } else if (command == "chrome") {
        writeChromeTrace(os, kept, dropped);
    } else {
        writeEventCsv(os, kept);
    }
    if (!outPath.empty() && !file) {
        std::cerr << "itrace: write to '" << outPath << "' failed\n";
        return 1;
    }
    return 0;
}
